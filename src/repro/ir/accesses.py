"""Array references (the paper's mappings ``R``).

Two concrete access kinds share the :class:`Access` interface:

* :class:`AffineAccess` (historically :class:`ArrayAccess`) — every
  subscript is an affine expression over the loop variables.  This is the
  only kind the paper's static analysis handles, and it keeps the closed
  ``offset_form`` used by all vectorized fast paths.
* :class:`IndirectAccess` — at least one subscript is an
  :class:`IndirectExpr`, a one-level nested reference ``idx[affine...]``
  into an index array that carries concrete :attr:`~repro.ir.arrays.Array.data`.
  There is no affine form; the access can only be *evaluated*, which is
  what the trace-based tagging fallback does.

Downstream passes dispatch on :attr:`Access.is_affine` (or the nest-level
``LoopNest.is_affine()``): affine nests keep their bit-identical fast
paths, indirect nests take the concrete-evaluation routes.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import IRError
from repro.ir.arrays import Array
from repro.poly.affine import AffineExpr
from repro.poly.relation import AffineMap


class Access:
    """Abstract array reference inside a loop nest.

    Subclasses provide ``array``, ``loop_dims``, ``subscripts`` and
    ``is_write`` attributes plus the evaluation methods below; consumers
    that need the affine closed form must check :attr:`is_affine` first.
    """

    __slots__ = ()

    #: True when every subscript is affine in the loop variables.
    is_affine = False

    def element(self, iteration: Sequence[int]) -> tuple[int, ...]:
        """Array element touched by ``iteration`` (R(I))."""
        raise NotImplementedError

    def element_offset(self, iteration: Sequence[int]) -> int:
        """Flat element offset within the array for ``iteration``."""
        raise NotImplementedError

    def offset_form(self) -> tuple[int, tuple[int, ...]]:
        """Affine closed form of the flat offset; raises when none exists."""
        raise NotImplementedError


class ArrayAccess(Access):
    """One affine array reference inside a loop nest.

    ``subscripts[k]`` gives array dimension ``k`` as an affine expression
    over the nest's loop variables; ``is_write`` distinguishes the
    assignment target from the uses.  ``R(I)`` in the paper is
    :meth:`element`.
    """

    __slots__ = ("array", "loop_dims", "subscripts", "is_write", "_map")

    is_affine = True

    def __init__(
        self,
        array: Array,
        loop_dims: Sequence[str],
        subscripts: Sequence[AffineExpr | int | str],
        is_write: bool = False,
    ):
        loop_dims = tuple(loop_dims)
        coerced = tuple(AffineExpr.coerce(s) for s in subscripts)
        if len(coerced) != array.rank:
            raise IRError(
                f"array {array.name!r} has rank {array.rank}, got {len(coerced)} subscripts"
            )
        loop_set = set(loop_dims)
        for expr in coerced:
            extra = expr.variables() - loop_set
            if extra:
                raise IRError(
                    f"subscript {expr} of {array.name!r} uses non-loop variables {sorted(extra)}"
                )
        out_dims = tuple(f"{array.name}_d{k}" for k in range(array.rank))
        object.__setattr__(self, "array", array)
        object.__setattr__(self, "loop_dims", loop_dims)
        object.__setattr__(self, "subscripts", coerced)
        object.__setattr__(self, "is_write", is_write)
        object.__setattr__(self, "_map", AffineMap(loop_dims, out_dims, coerced))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ArrayAccess is immutable")

    @property
    def access_map(self) -> AffineMap:
        """The reference as an affine map from iterations to array indices."""
        return self._map

    def element(self, iteration: Sequence[int]) -> tuple[int, ...]:
        """Array element touched by ``iteration`` (R(I))."""
        return self._map.apply(tuple(iteration))

    def element_offset(self, iteration: Sequence[int]) -> int:
        """Flat element offset within the array for ``iteration``."""
        return self.array.linear_offset(self.element(iteration))

    def offset_form(self) -> tuple[int, tuple[int, ...]]:
        """Flat element offset as a linear form over the loop dims.

        Returns ``(constant, coeffs)`` with ``offset(I) = constant +
        sum(coeffs[k] * I[k])``.  This is the unchecked fast path for hot
        loops (tagging, trace generation); validate the nest with
        :meth:`repro.ir.loops.LoopNest.validate_access_bounds` first.
        """
        strides = self.array._strides
        constant = 0
        coeffs = [0] * len(self.loop_dims)
        for subscript, stride in zip(self.subscripts, strides):
            constant += subscript.constant * stride
            for k, dim in enumerate(self.loop_dims):
                coeffs[k] += subscript.coeff(dim) * stride
        return constant, tuple(coeffs)

    def is_uniform_with(self, other: ArrayAccess) -> bool:
        """True if the two references differ only by a constant vector.

        Uniform reference pairs (e.g. ``A[i][j]`` and ``A[i+1][j-1]``)
        admit constant dependence distances.
        """
        if not isinstance(other, ArrayAccess):
            return False
        if self.array != other.array or self.loop_dims != other.loop_dims:
            return False
        return all(
            (a - b).is_constant() for a, b in zip(self.subscripts, other.subscripts)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArrayAccess):
            return NotImplemented
        return (
            self.array == other.array
            and self.loop_dims == other.loop_dims
            and self.subscripts == other.subscripts
            and self.is_write == other.is_write
        )

    def __hash__(self) -> int:
        return hash((self.array, self.loop_dims, self.subscripts, self.is_write))

    def __repr__(self) -> str:
        subs = "".join(f"[{s}]" for s in self.subscripts)
        kind = "W" if self.is_write else "R"
        return f"ArrayAccess({kind}:{self.array.name}{subs})"


#: The affine access under its role name; ``ArrayAccess`` remains the
#: constructor every existing call site uses.
AffineAccess = ArrayAccess


class IndirectExpr:
    """A one-level nested reference ``idx[affine...]`` used as a subscript.

    The index array must carry concrete ``data``; the expression's value at
    an iteration is ``idx.data[flat]`` where ``flat`` is the (affine) flat
    offset of the inner subscripts.  Nesting deeper than one level is not
    representable: the inner subscripts are plain affine expressions.
    """

    __slots__ = ("array", "subscripts", "_constant", "_coeffs")

    def __init__(self, array: Array, subscripts: Sequence[AffineExpr | int | str]):
        if array.data is None:
            raise IRError(
                f"index array {array.name!r} has no recorded data; indirect "
                "references need concrete index values"
            )
        coerced = tuple(AffineExpr.coerce(s) for s in subscripts)
        if len(coerced) != array.rank:
            raise IRError(
                f"index array {array.name!r} has rank {array.rank}, "
                f"got {len(coerced)} subscripts"
            )
        object.__setattr__(self, "array", array)
        object.__setattr__(self, "subscripts", coerced)
        constant = 0
        coeffs: dict[str, int] = {}
        for subscript, stride in zip(coerced, array._strides):
            constant += subscript.constant * stride
            for var in subscript.variables():
                coeffs[var] = coeffs.get(var, 0) + subscript.coeff(var) * stride
        object.__setattr__(self, "_constant", constant)
        object.__setattr__(self, "_coeffs", dict(coeffs))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IndirectExpr is immutable")

    def variables(self) -> frozenset[str]:
        vars_: set[str] = set()
        for subscript in self.subscripts:
            vars_ |= subscript.variables()
        return frozenset(vars_)

    def inner_offset_form(self, loop_dims: Sequence[str]) -> tuple[int, tuple[int, ...]]:
        """Flat offset *into the index array* as ``(constant, coeffs)``."""
        return self._constant, tuple(self._coeffs.get(d, 0) for d in loop_dims)

    def value(self, env: dict[str, int]) -> int:
        """The index value at a loop-variable environment."""
        flat = self._constant
        for var, coeff in self._coeffs.items():
            flat += coeff * env[var]
        data = self.array.data
        if not 0 <= flat < len(data):
            raise IRError(
                f"indirect reference reads {self.array.name!r} at flat offset "
                f"{flat}, outside [0, {len(data) - 1}]"
            )
        return data[flat]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IndirectExpr):
            return NotImplemented
        return self.array == other.array and self.subscripts == other.subscripts

    def __hash__(self) -> int:
        return hash((self.array, self.subscripts))

    def __str__(self) -> str:
        subs = "".join(f"[{s}]" for s in self.subscripts)
        return f"{self.array.name}{subs}"

    def __repr__(self) -> str:
        return f"IndirectExpr({self})"


class IndirectAccess(Access):
    """An array reference with at least one indirect subscript.

    ``subscripts[k]`` is either an :class:`~repro.poly.affine.AffineExpr`
    or an :class:`IndirectExpr`.  The access has no affine map; callers
    evaluate it per iteration (:meth:`element`, :meth:`element_offset`) or
    grab :meth:`subscript_forms` for batched evaluation.
    """

    __slots__ = ("array", "loop_dims", "subscripts", "is_write")

    is_affine = False

    def __init__(
        self,
        array: Array,
        loop_dims: Sequence[str],
        subscripts: Sequence[AffineExpr | IndirectExpr | int | str],
        is_write: bool = False,
    ):
        loop_dims = tuple(loop_dims)
        coerced: list[AffineExpr | IndirectExpr] = []
        indirect = False
        for subscript in subscripts:
            if isinstance(subscript, IndirectExpr):
                coerced.append(subscript)
                indirect = True
            else:
                coerced.append(AffineExpr.coerce(subscript))
        if not indirect:
            raise IRError(
                f"reference to {array.name!r} has only affine subscripts; "
                "use ArrayAccess"
            )
        if len(coerced) != array.rank:
            raise IRError(
                f"array {array.name!r} has rank {array.rank}, got {len(coerced)} subscripts"
            )
        loop_set = set(loop_dims)
        for expr in coerced:
            extra = expr.variables() - loop_set
            if extra:
                raise IRError(
                    f"subscript {expr} of {array.name!r} uses non-loop variables {sorted(extra)}"
                )
        object.__setattr__(self, "array", array)
        object.__setattr__(self, "loop_dims", loop_dims)
        object.__setattr__(self, "subscripts", tuple(coerced))
        object.__setattr__(self, "is_write", is_write)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IndirectAccess is immutable")

    def index_arrays(self) -> tuple[Array, ...]:
        """Distinct index arrays this reference reads through."""
        seen: dict[str, Array] = {}
        for subscript in self.subscripts:
            if isinstance(subscript, IndirectExpr):
                seen.setdefault(subscript.array.name, subscript.array)
        return tuple(seen.values())

    def element(self, iteration: Sequence[int]) -> tuple[int, ...]:
        env = dict(zip(self.loop_dims, iteration))
        index = []
        for subscript in self.subscripts:
            if isinstance(subscript, IndirectExpr):
                index.append(subscript.value(env))
            else:
                index.append(subscript.evaluate(env))
        return tuple(index)

    def element_offset(self, iteration: Sequence[int]) -> int:
        """Flat element offset (bounds-checked through the array)."""
        return self.array.linear_offset(self.element(iteration))

    def offset_form(self) -> tuple[int, tuple[int, ...]]:
        raise IRError(
            f"indirect reference to {self.array.name!r} has no affine offset "
            "form; evaluate it via element_offset or subscript_forms"
        )

    def subscript_forms(
        self,
    ) -> tuple[tuple[str, int, tuple[int, ...], tuple[int, ...] | None], ...]:
        """Per-dimension batched-evaluation recipe.

        Each entry is ``(kind, constant, coeffs, data)``: for ``kind ==
        'affine'`` the dimension's value is ``constant + coeffs . I`` and
        ``data`` is ``None``; for ``kind == 'indirect'`` the value is
        ``data[constant + coeffs . I]`` (``constant``/``coeffs`` give the
        flat offset into the index array).  Both the scalar trace recorder
        and the numpy gather path consume this.
        """
        forms = []
        for subscript in self.subscripts:
            if isinstance(subscript, IndirectExpr):
                constant, coeffs = subscript.inner_offset_form(self.loop_dims)
                forms.append(("indirect", constant, coeffs, subscript.array.data))
            else:
                constant = subscript.constant
                coeffs = tuple(subscript.coeff(d) for d in self.loop_dims)
                forms.append(("affine", constant, coeffs, None))
        return tuple(forms)

    def offset_evaluator(self) -> Callable[[Sequence[int]], int]:
        """A fast unchecked ``iteration -> flat offset`` closure.

        Safe only after ``LoopNest.validate_access_bounds`` proved every
        index value in range; mirrors ``ArrayAccess.offset_form``'s role.
        """
        strides = self.array._strides
        forms = self.subscript_forms()

        def offset(iteration: Sequence[int]) -> int:
            total = 0
            for (kind, constant, coeffs, data), stride in zip(forms, strides):
                value = constant
                for coeff, coord in zip(coeffs, iteration):
                    value += coeff * coord
                if kind == "indirect":
                    value = data[value]
                total += value * stride
            return total

        return offset

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IndirectAccess):
            return NotImplemented
        return (
            self.array == other.array
            and self.loop_dims == other.loop_dims
            and self.subscripts == other.subscripts
            and self.is_write == other.is_write
        )

    def __hash__(self) -> int:
        return hash((self.array, self.loop_dims, self.subscripts, self.is_write))

    def __repr__(self) -> str:
        subs = "".join(f"[{s}]" for s in self.subscripts)
        kind = "W" if self.is_write else "R"
        return f"IndirectAccess({kind}:{self.array.name}{subs})"
