"""In-process LRU store for pipeline stage artifacts.

Keys are the driver's content-addressed stage keys; values are the
immutable artifacts of :mod:`repro.pipeline.artifacts`.  The store is a
bounded, thread-safe LRU (the service's worker threads share one), with
hit/miss/eviction counts surfaced both through :meth:`ArtifactStore.stats`
and the obs decision counters the driver emits per stage.

Stage artifacts hold live :class:`~repro.blocks.groups.IterationGroup`
objects whose idents come from a process-global counter, so cache keys
embed the current *ident epoch* (bumped by
:meth:`IterationGroup.reset_idents`): after a reset — the test suite
does one per test — every stale key simply misses instead of leaking
groups from the previous epoch into a fresh pipeline run, where ident
collisions could corrupt dependence lookups.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.blocks.groups import IterationGroup


def ident_epoch() -> int:
    """The current group-ident epoch (see module docstring)."""
    return getattr(IterationGroup, "_ident_epoch", 0)


class ArtifactStore:
    """Bounded, thread-safe LRU over stage artifacts."""

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _encode(key: tuple) -> str:
        return repr(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple):
        encoded = self._encode(key)
        with self._lock:
            value = self._entries.get(encoded)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(encoded)
            self.hits += 1
            return value

    def peek(self, key: tuple):
        """Non-counting lookup: no LRU promotion, no hit/miss accounting.

        Used by the remapper's artifact carry-forward, which copies a
        machine-independent prefix old-key -> new-key and must not
        distort the store's hit-rate statistics while doing so.
        """
        with self._lock:
            return self._entries.get(self._encode(key))

    def put(self, key: tuple, artifact) -> None:
        encoded = self._encode(key)
        with self._lock:
            self._entries[encoded] = artifact
            self._entries.move_to_end(encoded)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


#: The process-wide default store, shared by the harness, the service
#: engine and the autotuner unless they pass their own.
_DEFAULT: ArtifactStore | None = None
_DEFAULT_LOCK = threading.Lock()


def default_store() -> ArtifactStore:
    """The shared per-process artifact store (created on first use)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = ArtifactStore()
        return _DEFAULT


def reset_default_store() -> None:
    """Drop the shared store (tests; frees the artifacts it pinned)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = None
