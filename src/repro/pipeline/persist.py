"""Optional persistent tier for final-stage plan artifacts.

Intermediate artifacts (tag sets, dependence graphs, tree assignments)
hold live ``IterationGroup`` objects whose idents — which the scheduler
uses as deterministic tie-breakers — do not survive serialization, so
persisting them could replay a *valid but different* plan.  The final
stage's output, by contrast, is pure data: per-core rounds of iteration
tuples.  This tier persists exactly that, under the same discipline as
:mod:`repro.experiments.cache`:

* content keys (the pipeline's schedule-stage key, minus the process-
  local ident epoch), never timestamps;
* the mapping-relevant code fingerprint baked into the file name
  (``plans-<fp12>.json``), so editing the mapper starts a fresh file
  instead of serving stale plans;
* write-through, atomic replace, corrupt/foreign files read as empty.

:meth:`MappingPipeline.plan` consults this tier before running anything,
which makes cold-process sweeps (a fresh ``repro tune`` over knobs
already explored yesterday) skip the whole chain.
"""

from __future__ import annotations

import json
import os

from repro.errors import MappingError
from repro.experiments.cache import code_fingerprint, default_cache_dir
from repro.ir.loops import LoopNest
from repro.mapping.distribute import ExecutablePlan
from repro.topology.tree import Machine

#: Schema tag for the persistent file payload.
STORE_FORMAT = 1


class PlanStore:
    """One on-disk plan store, bound to one code fingerprint."""

    def __init__(self, directory: str | None = None):
        self.directory = directory or default_cache_dir()
        self.fingerprint = code_fingerprint()
        self.path = os.path.join(
            self.directory, f"plans-{self.fingerprint[:12]}.json"
        )
        self._entries: dict[str, dict] = self._load()

    def _load(self) -> dict[str, dict]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return {}
        if (
            not isinstance(payload, dict)
            or payload.get("format") != STORE_FORMAT
            or payload.get("fingerprint") != self.fingerprint
        ):
            return {}
        entries = payload.get("plans")
        return entries if isinstance(entries, dict) else {}

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _encode(key: tuple) -> str:
        return json.dumps(key, separators=(",", ":"))

    def get(self, key: tuple, machine: Machine, nest: LoopNest) -> ExecutablePlan | None:
        raw = self._entries.get(self._encode(key))
        if raw is None:
            return None
        try:
            rounds = tuple(
                tuple(tuple(tuple(int(x) for x in p) for p in rnd) for rnd in core)
                for core in raw["rounds"]
            )
            plan = ExecutablePlan(machine, nest, rounds, str(raw["label"]))
            plan.verify_complete()
            return plan
        except (KeyError, TypeError, ValueError, MappingError):
            return None

    def put(self, key: tuple, plan: ExecutablePlan) -> None:
        encoded = self._encode(key)
        if encoded in self._entries:
            return
        self._entries[encoded] = {
            "label": plan.label,
            "rounds": [
                [[list(p) for p in rnd] for rnd in core] for core in plan.rounds
            ],
        }
        self._flush()

    def _flush(self) -> None:
        os.makedirs(self.directory, exist_ok=True)
        payload = {
            "format": STORE_FORMAT,
            "fingerprint": self.fingerprint,
            "plans": self._entries,
        }
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, self.path)
