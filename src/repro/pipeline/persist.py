"""Optional persistent tier for final-stage plan artifacts.

Intermediate artifacts (tag sets, dependence graphs, tree assignments)
hold live ``IterationGroup`` objects whose idents — which the scheduler
uses as deterministic tie-breakers — do not survive serialization, so
persisting them could replay a *valid but different* plan.  The final
stage's output, by contrast, is pure data: per-core rounds of iteration
tuples.  This tier persists exactly that, under the same discipline as
:mod:`repro.experiments.cache`:

* content keys (the pipeline's schedule-stage key, minus the process-
  local ident epoch), never timestamps;
* the mapping-relevant code fingerprint baked into the file name
  (``plans-<fp12>.json``), so editing the mapper starts a fresh file
  instead of serving stale plans;
* write-through, atomic replace, corrupt/foreign files read as empty.

**Cross-process sharing.**  The sharded service runs N worker processes
over one store file, so a flush is a locked read-merge-replace rather
than a blind ``os.replace`` (which was last-writer-wins: two workers
persisting different plans concurrently silently dropped one).  Every
writer takes the adjacent ``.lock`` file, re-reads the on-disk entries,
merges its own on top, and only then replaces the file — entries are
content-keyed, so a key collision between processes is by construction
the same plan and the merge is conflict-free.  Reads pick up other
processes' writes lazily: a ``get`` miss re-checks the file's stat
signature and reloads when it changed.

**Compaction** is single-writer: :meth:`PlanStore.compact` elects itself
through a non-blocking ``.compact.lock`` (losers return ``None`` and
skip), then rewrites the file dropping malformed entries and — given
``max_entries`` — the oldest overflow (JSON objects preserve insertion
order, so the tail of the dict is the newest).

:meth:`MappingPipeline.plan` consults this tier before running anything,
which makes cold-process sweeps (a fresh ``repro tune`` over knobs
already explored yesterday) skip the whole chain.
"""

from __future__ import annotations

import json
import os
import threading

from repro.errors import MappingError
from repro.experiments.cache import code_fingerprint, default_cache_dir
from repro.ir.loops import LoopNest
from repro.mapping.distribute import ExecutablePlan
from repro.topology.tree import Machine
from repro.util.filelock import FileLock

#: Schema tag for the persistent file payload.
STORE_FORMAT = 1


class PlanStore:
    """One on-disk plan store, bound to one code fingerprint.

    Safe for concurrent use from many threads (internal mutex) and many
    processes (file lock + merge-on-write; see the module docstring).
    """

    def __init__(self, directory: str | None = None):
        self.directory = directory or default_cache_dir()
        self.fingerprint = code_fingerprint()
        self.path = os.path.join(
            self.directory, f"plans-{self.fingerprint[:12]}.json"
        )
        self._mutex = threading.RLock()
        self._disk_sig: tuple | None = None
        self._entries: dict[str, dict] = {}
        self._reload_if_changed()

    # -- disk primitives -------------------------------------------------
    def _signature(self) -> tuple | None:
        """A cheap change detector for the store file."""
        try:
            st = os.stat(self.path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size, st.st_ino)

    def _read_disk(self) -> dict[str, dict]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return {}
        if (
            not isinstance(payload, dict)
            or payload.get("format") != STORE_FORMAT
            or payload.get("fingerprint") != self.fingerprint
        ):
            return {}
        entries = payload.get("plans")
        return entries if isinstance(entries, dict) else {}

    def _reload_if_changed(self) -> None:
        """Fold in entries other processes persisted since our last look."""
        sig = self._signature()
        if sig == self._disk_sig:
            return
        merged = self._read_disk()
        merged.update(self._entries)
        self._entries = merged
        self._disk_sig = sig

    def _write(self, entries: dict[str, dict]) -> None:
        """Atomically replace the store file (caller holds the file lock)."""
        payload = {
            "format": STORE_FORMAT,
            "fingerprint": self.fingerprint,
            "plans": entries,
        }
        tmp = f"{self.path}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, self.path)

    def _lock(self) -> FileLock:
        return FileLock(self.path + ".lock")

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    @staticmethod
    def _encode(key: tuple) -> str:
        return json.dumps(key, separators=(",", ":"))

    # -- store API -------------------------------------------------------
    def get(self, key: tuple, machine: Machine, nest: LoopNest) -> ExecutablePlan | None:
        encoded = self._encode(key)
        with self._mutex:
            raw = self._entries.get(encoded)
            if raw is None:
                self._reload_if_changed()
                raw = self._entries.get(encoded)
        if raw is None:
            return None
        try:
            rounds = tuple(
                tuple(tuple(tuple(int(x) for x in p) for p in rnd) for rnd in core)
                for core in raw["rounds"]
            )
            plan = ExecutablePlan(machine, nest, rounds, str(raw["label"]))
            plan.verify_complete()
            return plan
        except (KeyError, TypeError, ValueError, MappingError):
            return None

    def put(self, key: tuple, plan: ExecutablePlan) -> None:
        encoded = self._encode(key)
        with self._mutex:
            if encoded in self._entries:
                return
            self._entries[encoded] = {
                "label": plan.label,
                "rounds": [
                    [[list(p) for p in rnd] for rnd in core] for core in plan.rounds
                ],
            }
            self._flush()

    def _flush(self) -> None:
        """Locked read-merge-replace (caller holds the thread mutex)."""
        os.makedirs(self.directory, exist_ok=True)
        with self._lock():
            merged = self._read_disk()
            merged.update(self._entries)
            self._entries = merged
            self._write(merged)
            self._disk_sig = self._signature()

    # -- maintenance -----------------------------------------------------
    @staticmethod
    def _well_formed(raw) -> bool:
        return (
            isinstance(raw, dict)
            and isinstance(raw.get("label"), str)
            and isinstance(raw.get("rounds"), list)
        )

    def compact(self, max_entries: int | None = None) -> dict | None:
        """Rewrite the store, dropping malformed and overflow entries.

        Only one process compacts at a time: the election is a
        non-blocking claim on ``.compact.lock``, and losers return
        ``None`` without touching the file.  Winners return a summary
        ``{"kept", "dropped_invalid", "dropped_overflow"}``.
        """
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        os.makedirs(self.directory, exist_ok=True)
        election = FileLock(self.path + ".compact.lock")
        if not election.acquire(blocking=False):
            return None
        try:
            with self._mutex, self._lock():
                disk = self._read_disk()
                valid = {k: v for k, v in disk.items() if self._well_formed(v)}
                dropped_invalid = len(disk) - len(valid)
                dropped_overflow = 0
                if max_entries is not None and len(valid) > max_entries:
                    dropped_overflow = len(valid) - max_entries
                    keep = list(valid.items())[dropped_overflow:]
                    valid = dict(keep)
                self._write(valid)
                self._entries = dict(valid)
                self._disk_sig = self._signature()
            return {
                "kept": len(valid),
                "dropped_invalid": dropped_invalid,
                "dropped_overflow": dropped_overflow,
            }
        finally:
            election.release()
