"""Immutable, fingerprinted stage artifacts.

Each pipeline stage produces exactly one artifact; the driver caches
them in the artifact store under content-addressed keys.  Artifacts are
frozen dataclasses over already-immutable structures (``GroupSet``,
``IterationGroup``, ``DataBlockPartition`` all refuse mutation), so a
cached artifact can be shared freely between pipeline runs and service
worker threads.

Every artifact exposes :meth:`fingerprint`, a content digest that is
**identity-independent**: it is computed from tags, iteration tuples and
group *positions*, never from ``IterationGroup.ident`` (a process-local
counter that does not survive serialization — or even a test-suite ident
reset).  Two artifacts describing the same mapping state fingerprint
equal no matter which process, or which point in the ident sequence,
constructed them; the hypothesis round-trip suite in
``tests/pipeline/test_fingerprints.py`` pins this.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass
from functools import cached_property

from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.groups import GroupSet, IterationGroup
from repro.mapping.dependence import GroupDependenceGraph


def _digest(parts: Sequence) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(repr(part).encode())
        hasher.update(b"\0")
    return hasher.hexdigest()[:16]


def _group_spec(group: IterationGroup) -> tuple:
    """Identity-free content of one group (no ident)."""
    return (group.tag, group.write_tag, group.read_tag, group.iterations)


def group_specs(groups: Sequence[IterationGroup]) -> tuple[tuple, ...]:
    """Serializable, identity-free specs for a group sequence.

    The inverse is :func:`groups_from_specs`; the pair round-trips
    everything but the idents, which are reassigned on reconstruction.
    """
    return tuple(_group_spec(g) for g in groups)


def groups_from_specs(specs: Sequence[tuple]) -> list[IterationGroup]:
    """Rebuild groups from :func:`group_specs` output (fresh idents)."""
    return [
        IterationGroup(tag, [tuple(p) for p in iterations], wtag, rtag)
        for tag, wtag, rtag, iterations in specs
    ]


@dataclass(frozen=True)
class BlockChoice:
    """Stage 1 output: the resolved block size and the data partition.

    ``block_size`` is the Section 4.1 heuristic's pick when the knob was
    ``None``, else the knob itself — downstream stages never need to
    know which.
    """

    block_size: int
    partition: DataBlockPartition

    @cached_property
    def _fingerprint(self) -> str:
        arrays = tuple(
            (a.name, a.extents, a.element_size) for a in self.partition.arrays
        )
        return _digest(("blockchoice", self.block_size, arrays))

    def fingerprint(self) -> str:
        return self._fingerprint


@dataclass(frozen=True)
class TagArtifact:
    """Stage 2 output: the full tagging result (Section 3.3)."""

    group_set: GroupSet

    @property
    def partition(self) -> DataBlockPartition:
        return self.group_set.partition

    @cached_property
    def _fingerprint(self) -> str:
        return _digest(("tag", group_specs(self.group_set.groups)))

    def fingerprint(self) -> str:
        return self._fingerprint


@dataclass(frozen=True)
class GroupArtifact:
    """An immutable group sequence with an identity-free fingerprint.

    The dependence stage's groups differ from the tagging stage's when
    the policy merged anything (SCC super-groups under ``barrier``,
    connected components under ``co-cluster``); this wrapper is the
    common currency for "a frozen list of groups" between artifacts.
    """

    groups: tuple[IterationGroup, ...]

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self):
        return iter(self.groups)

    @cached_property
    def _fingerprint(self) -> str:
        return _digest(("groups", group_specs(self.groups)))

    def fingerprint(self) -> str:
        return self._fingerprint


@dataclass(frozen=True)
class DependenceArtifact:
    """Stage 3 output: policy-resolved groups plus the lifted DAG.

    ``graph`` is ``None`` for parallel nests and under the co-cluster
    policy (merging leaves nothing to synchronize).  Its edges reference
    the *idents* of ``groups`` — which is why the artifact carries both:
    they are only meaningful together.
    """

    groups: GroupArtifact
    graph: GroupDependenceGraph | None

    @cached_property
    def _fingerprint(self) -> str:
        return _digest(
            ("dependence", self.groups.fingerprint(), self.edge_indexes())
        )

    def fingerprint(self) -> str:
        return self._fingerprint

    def edge_indexes(self) -> tuple[tuple[int, int], ...]:
        """Graph edges as (position, position) pairs into ``groups`` —
        the identity-free form used by the fingerprint."""
        if self.graph is None:
            return ()
        position = {g.ident: i for i, g in enumerate(self.groups)}
        return tuple(
            sorted(
                (position[a], position[b])
                for a in self.graph.nodes
                for b in self.graph.succs[a]
                if a in position and b in position
            )
        )


@dataclass(frozen=True)
class TreeAssignment:
    """Stage 4 output: the per-core group assignment (Figure 6 + balance).

    Balance splits create new groups, so these are not necessarily a
    subset of the dependence artifact's; split children carry fresh
    idents absent from the dependence graph, which the scheduler treats
    as dependence-free — the same behavior the monolithic chain had.
    """

    assignments: tuple[tuple[IterationGroup, ...], ...]

    @cached_property
    def _fingerprint(self) -> str:
        return _digest(
            ("tree", tuple(group_specs(core) for core in self.assignments))
        )

    def fingerprint(self) -> str:
        return self._fingerprint


@dataclass(frozen=True)
class PlanArtifact:
    """Stage 5 output: ordered per-core rounds of groups plus the label.

    ``ExecutablePlan`` (the cross-scheme currency the simulator speaks)
    is derived from this via
    :meth:`~repro.mapping.distribute.ExecutablePlan.from_group_rounds`;
    the artifact keeps group granularity so a cached hit can still
    rebuild the full :class:`~repro.mapping.distribute.MappingResult`.
    """

    group_rounds: tuple[tuple[tuple[IterationGroup, ...], ...], ...]
    label: str

    @cached_property
    def _fingerprint(self) -> str:
        rounds = tuple(
            tuple(group_specs(rnd) for rnd in core) for core in self.group_rounds
        )
        return _digest(("plan", self.label, rounds))

    def fingerprint(self) -> str:
        return self._fingerprint

    def point_rounds(self) -> tuple:
        """The plan's rounds flattened to iteration tuples (the exact
        shape of ``ExecutablePlan.rounds``)."""
        return tuple(
            tuple(
                tuple(p for g in rnd for p in g.iterations) for rnd in core
            )
            for core in self.group_rounds
        )
