"""The canonical mapper knob set and its per-stage cache tuples.

Every cache in the repo that keys on "how the mapper was configured" —
the service's two-tier mapping cache, the experiment harness memo and
disk cache, and the pipeline's per-stage artifact store — derives its
knob tuple from this one dataclass.  Before the staged pipeline existed,
the service protocol and the harness each hand-assembled their own
tuples, which is exactly the kind of key drift that silently serves a
stale mapping when one of the two grows a knob the other forgot.

:attr:`STAGE_KNOBS` records which knobs each stage of the chain actually
reads; :meth:`Knobs.stage_tuple` returns the *cumulative* tuple for a
stage (its own knobs plus every upstream stage's), which is the part of
a stage artifact's cache key that makes late-knob sweeps cheap: two
configurations that differ only in α/β share every tuple up to and
including ``distribute`` and diverge only at ``schedule``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import MappingError

#: The paper's chain (Section 3), in execution order.
STAGE_ORDER = ("blocksize", "tagging", "dependence", "distribute", "schedule")

#: Knobs each stage reads (beyond program/nest/machine).  Keys follow
#: the paper: block size is the Section 4.1 heuristic's override;
#: ``max_groups`` is the tagging explosion guard; ``dependence_policy``
#: picks between Section 3.5.2's barrier and co-cluster options;
#: ``balance_threshold``/``cluster_strategy``/``refine`` shape the
#: Figure 6 descent; α/β and ``local_scheduling`` are Section 3.5.3.
STAGE_KNOBS: dict[str, tuple[str, ...]] = {
    "blocksize": ("block_size",),
    "tagging": ("max_groups",),
    "dependence": ("dependence_policy",),
    "distribute": ("balance_threshold", "cluster_strategy", "refine"),
    "schedule": ("local_scheduling", "alpha", "beta"),
}

_FLOAT_KNOBS = frozenset({"balance_threshold", "alpha", "beta"})


@dataclass(frozen=True)
class Knobs:
    """Mapper parameters, normalized for hashing (the knob tuple).

    Defaults mirror the service protocol's (Section 4.1 values with
    local scheduling on); :class:`~repro.mapping.distribute.TopologyAwareMapper`
    constructs its own instance from its arguments, so its historical
    ``local_scheduling=False`` default is unaffected.
    """

    block_size: int | None = None
    balance_threshold: float = 0.10
    alpha: float = 0.5
    beta: float = 0.5
    local_scheduling: bool = True
    dependence_policy: str = "barrier"
    cluster_strategy: str = "greedy"
    max_groups: int | None = 50_000
    refine: bool = True

    def __post_init__(self) -> None:
        if self.dependence_policy not in ("barrier", "co-cluster"):
            raise MappingError(
                f"unknown dependence policy {self.dependence_policy!r}"
            )
        if self.cluster_strategy not in ("greedy", "kl"):
            raise MappingError(
                f"unknown cluster strategy {self.cluster_strategy!r}"
            )
        if self.block_size is not None and self.block_size <= 0:
            raise MappingError(
                f"block_size must be positive, got {self.block_size}"
            )

    def _value(self, name: str):
        value = getattr(self, name)
        if name in _FLOAT_KNOBS:
            return round(value, 6)
        return value

    def stage_tuple(self, stage: str) -> tuple:
        """Cumulative knob tuple for ``stage``: its knobs plus upstream's.

        This is the knob component of a stage artifact's cache key.  Two
        configurations share a stage artifact iff their cumulative
        tuples match — so the tuple must cover every knob that can
        influence the stage's output, directly or through its inputs.
        """
        if stage not in STAGE_KNOBS:
            raise MappingError(
                f"unknown pipeline stage {stage!r}; known: {STAGE_ORDER}"
            )
        out: list = []
        for name in STAGE_ORDER:
            out.extend(self._value(field) for field in STAGE_KNOBS[name])
            if name == stage:
                break
        return tuple(out)

    def as_tuple(self) -> tuple:
        """The full canonical knob tuple (every stage's knobs, in stage
        order) — the knob component of whole-result cache keys."""
        return self.stage_tuple(STAGE_ORDER[-1])

    def replace(self, **changes) -> "Knobs":
        """A copy with some knobs changed (sweep convenience)."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values.update(changes)
        return Knobs(**values)
