"""The staged pipeline driver (the paper's Section 3 chain, once).

:class:`MappingPipeline` runs the five stages —

    blocksize → tagging → dependence → distribute → schedule

— looking each stage up in the artifact store before computing it.  A
stage's key is ``(stage, program digest, nest, topology digest,
cumulative knob tuple, ident epoch)``; because the knob tuple is
cumulative (see :mod:`repro.pipeline.knobs`), a run that differs from a
cached one only in a late knob replays every earlier stage from the
store.  The observable behavior — span names, decision counters, the
per-phase ``timings`` dict, and above all the produced plan — is
bit-identical to the monolithic ``TopologyAwareMapper.map_nest`` chain
this driver replaced; the differential suite in
``tests/pipeline/test_differential.py`` holds it to that.

Stage bodies never mutate their inputs (the schedule copies assignment
lists before draining them; distribution builds fresh lists), so cached
artifacts are safely shared across runs and threads.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro import obs
from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.tagger import choose_block_size, tag_iterations
from repro.experiments.cache import machine_digest
from repro.ir.loops import LoopNest, Program
from repro.mapping.clustering import hierarchical_distribute
from repro.mapping.dependence import (
    build_group_dependence_graph,
    merge_dependent_groups,
)
from repro.mapping.distribute import MappingResult
from repro.mapping.schedule import dependence_only_schedule, schedule_groups
from repro.pipeline.artifacts import (
    BlockChoice,
    DependenceArtifact,
    GroupArtifact,
    PlanArtifact,
    TagArtifact,
    TreeAssignment,
)
from repro.pipeline.knobs import STAGE_ORDER, Knobs
from repro.pipeline.persist import PlanStore
from repro.pipeline.store import ArtifactStore, ident_epoch
from repro.runtime.serialize import program_digest
from repro.topology.tree import Machine


class Stage:
    """One pipeline stage: a name, the obs span it emits, the timing key
    it reports under, and a pure compute function.

    ``compute`` receives ``(pipeline, program, nest, upstream, span)``
    where ``upstream`` maps stage names to their artifacts; it must not
    mutate any upstream artifact.  The knob subset a stage reads is
    declared in :data:`repro.pipeline.knobs.STAGE_KNOBS`, which the
    driver folds into the stage's cache key.
    """

    __slots__ = ("name", "span_name", "timing_key", "compute")

    def __init__(
        self,
        name: str,
        span_name: str,
        timing_key: str,
        compute: Callable,
    ):
        self.name = name
        self.span_name = span_name
        self.timing_key = timing_key
        self.compute = compute

    def __repr__(self) -> str:
        return f"Stage({self.name!r})"


def _stage_blocksize(
    pipe: "MappingPipeline", program: Program, nest: LoopNest, upstream, sp
) -> BlockChoice:
    block_size = pipe.knobs.block_size
    if block_size is None:
        l1 = pipe.machine.cache_path(0)[0].spec.size_bytes
        block_size = choose_block_size(program, nest, l1)
    arrays = [program.arrays[a.name] for a in nest.arrays()]
    return BlockChoice(block_size, DataBlockPartition(arrays, block_size))


def _stage_tagging(
    pipe: "MappingPipeline", program: Program, nest: LoopNest, upstream, sp
) -> TagArtifact:
    partition = upstream["blocksize"].partition
    group_set = tag_iterations(nest, partition, max_groups=pipe.knobs.max_groups)
    return TagArtifact(group_set)


def _stage_dependence(
    pipe: "MappingPipeline", program: Program, nest: LoopNest, upstream, sp
) -> DependenceArtifact:
    groups = list(upstream["tagging"].group_set.groups)
    graph = None
    if not nest.parallel:
        raw = build_group_dependence_graph(nest, groups)
        if pipe.knobs.dependence_policy == "co-cluster":
            merged = merge_dependent_groups(groups, raw)
            obs.count("dependence.co_cluster_merges", len(groups) - len(merged))
            groups = merged
        else:
            groups, graph = raw.acyclified(groups)
        sp.tag(
            policy=pipe.knobs.dependence_policy,
            edges=graph.num_edges if graph is not None else 0,
        )
    return DependenceArtifact(GroupArtifact(tuple(groups)), graph)


def _stage_distribute(
    pipe: "MappingPipeline", program: Program, nest: LoopNest, upstream, sp
) -> TreeAssignment:
    knobs = pipe.knobs
    groups = list(upstream["dependence"].groups)
    assignments = hierarchical_distribute(
        groups, pipe.machine, knobs.balance_threshold, knobs.cluster_strategy
    )
    if knobs.refine:
        from repro.mapping.balance import Cluster, balance_clusters
        from repro.mapping.refine import refine_assignment

        # Refine against the topology objective inside a wider balance
        # window, then re-tighten the balance (splitting groups where
        # needed) so the final assignment honors the threshold.
        with obs.span("map.refine"):
            window = max(knobs.balance_threshold, 0.08)
            assignments = refine_assignment(assignments, pipe.machine, window)
            clusters = [Cluster(core_groups) for core_groups in assignments]
            balance_clusters(clusters, knobs.balance_threshold)
            assignments = [list(c.groups) for c in clusters]
    return TreeAssignment(tuple(tuple(core) for core in assignments))


def _stage_schedule(
    pipe: "MappingPipeline", program: Program, nest: LoopNest, upstream, sp
) -> PlanArtifact:
    knobs = pipe.knobs
    graph = upstream["dependence"].graph
    assignments = upstream["distribute"].assignments
    if knobs.local_scheduling:
        group_rounds = schedule_groups(
            assignments, pipe.machine, graph, knobs.alpha, knobs.beta
        )
        if graph is None or graph.num_edges == 0:
            # Dependence-free: the round structure only served the
            # scheduler's horizontal pacing; execution needs no
            # barriers, so flatten to one synchronization-free round
            # (pacing survives through the balanced sizes).
            group_rounds = [
                [[g for rnd in core_rounds for g in rnd]]
                for core_rounds in group_rounds
            ]
    else:
        group_rounds = dependence_only_schedule(assignments, pipe.machine, graph)
    label = "topology-aware+sched" if knobs.local_scheduling else "topology-aware"
    frozen = tuple(
        tuple(tuple(rnd) for rnd in core_rounds) for core_rounds in group_rounds
    )
    return PlanArtifact(frozen, label)


#: The five stages, in execution order.  Span and timing names are the
#: monolithic chain's — traces and the compile-time ablation read the
#: same keys they always did.
STAGES: tuple[Stage, ...] = (
    Stage("blocksize", "map.partition", "partition", _stage_blocksize),
    Stage("tagging", "map.tagging", "tagging", _stage_tagging),
    Stage("dependence", "map.dependence", "dependence", _stage_dependence),
    Stage("distribute", "map.clustering", "clustering", _stage_distribute),
    Stage("schedule", "map.scheduling", "scheduling", _stage_schedule),
)

assert tuple(s.name for s in STAGES) == STAGE_ORDER


class MappingPipeline:
    """Drives the staged chain with per-stage artifact caching.

    ``store=None`` disables stage reuse entirely (every stage computes);
    that is the mapper's default so one-shot CLI runs and the
    compile-time ablation keep honest timings, while the harness, the
    service engine and the autotuner pass a shared
    :class:`~repro.pipeline.store.ArtifactStore`.  ``plans`` optionally
    adds the persistent final-plan tier consulted by :meth:`plan`.
    """

    def __init__(
        self,
        machine: Machine,
        knobs: Knobs | None = None,
        store: ArtifactStore | None = None,
        plans: PlanStore | None = None,
        observer: Callable[[str, bool], None] | None = None,
    ):
        self.machine = machine
        self.knobs = knobs if knobs is not None else Knobs()
        self.store = store
        self.plans = plans
        # Per-pipeline stage observer: called as observer(stage_name,
        # hit) once per stage execution.  Unlike the global store
        # counters this is race-free under concurrent pipelines, which
        # is what the remapper's replayed/recomputed accounting needs.
        self.observer = observer

    # -- keys -----------------------------------------------------------

    def _base_key(self, program: Program, nest: LoopNest) -> tuple:
        return (program_digest(program), nest.name, machine_digest(self.machine))

    def stage_key(self, stage: str, base: tuple) -> tuple:
        """The store key of one stage for one (program, nest, machine).

        The ident epoch suffix makes keys from before an
        ``IterationGroup.reset_idents`` miss (their artifacts reference
        retired idents); it is process-local, hence excluded from the
        persistent tier's keys.
        """
        return (stage, *base, self.knobs.stage_tuple(stage), ident_epoch())

    def plan_key(self, program: Program, nest: LoopNest) -> tuple:
        """The persistent tier's key: content-only, no ident epoch."""
        return (
            "schedule",
            *self._base_key(program, nest),
            self.knobs.stage_tuple("schedule"),
        )

    # -- execution ------------------------------------------------------

    def _run_stage(
        self,
        stage: Stage,
        program: Program,
        nest: LoopNest,
        base: tuple,
        upstream: dict,
        timings: dict[str, float],
        span_kwargs: dict,
        tag_hit: Callable | None = None,
    ):
        key = self.stage_key(stage.name, base)
        t0 = time.perf_counter()
        with obs.span(stage.span_name, **span_kwargs) as sp:
            artifact = self.store.get(key) if self.store is not None else None
            if self.observer is not None:
                self.observer(stage.name, artifact is not None)
            if artifact is not None:
                obs.count("pipeline.stage_hits")
                obs.count(f"pipeline.{stage.name}.hits")
                sp.tag(cache="hit")
                if tag_hit is not None:
                    tag_hit(sp, artifact)
            else:
                if self.store is not None:
                    obs.count("pipeline.stage_misses")
                    obs.count(f"pipeline.{stage.name}.misses")
                    sp.tag(cache="miss")
                artifact = stage.compute(self, program, nest, upstream, sp)
                if self.store is not None:
                    self.store.put(key, artifact)
        timings[stage.timing_key] = time.perf_counter() - t0
        upstream[stage.name] = artifact
        return artifact

    def map_nest(self, program: Program, nest: LoopNest) -> MappingResult:
        """Run (or replay) the chain for one nest."""
        timings: dict[str, float] = {}
        with obs.span(
            "map.nest",
            nest=nest.name,
            machine=self.machine.name,
            iterations=nest.iteration_count(),
        ) as sp:
            base = self._base_key(program, nest)
            upstream: dict = {}
            for stage in STAGES:
                span_kwargs: dict = {}
                if stage.name == "dependence":
                    span_kwargs = {"parallel": nest.parallel}
                elif stage.name == "schedule":
                    span_kwargs = {"local": self.knobs.local_scheduling}
                tag_hit = None
                if stage.name == "dependence" and not nest.parallel:
                    def tag_hit(span, artifact):
                        span.tag(
                            policy=self.knobs.dependence_policy,
                            edges=(
                                artifact.graph.num_edges
                                if artifact.graph is not None
                                else 0
                            ),
                        )
                self._run_stage(
                    stage, program, nest, base, upstream, timings, span_kwargs, tag_hit
                )
            block: BlockChoice = upstream["blocksize"]
            tag: TagArtifact = upstream["tagging"]
            sp.tag(groups=len(tag.group_set.groups), block_size=block.block_size)
            obs.count("map.nests_mapped")
        plan_art: PlanArtifact = upstream["schedule"]
        return MappingResult(
            self.machine,
            nest,
            block.partition,
            tag.group_set,
            upstream["dependence"].graph,
            [list(core) for core in upstream["distribute"].assignments],
            [[list(rnd) for rnd in core] for core in plan_art.group_rounds],
            plan_art.label,
            timings,
        )

    def map_program(self, program: Program) -> list[MappingResult]:
        """Map every nest of a program (each nest independently)."""
        return [self.map_nest(program, nest) for nest in program.nests]

    def plan(self, program: Program, nest: LoopNest):
        """An :class:`~repro.mapping.distribute.ExecutablePlan` for one
        nest, consulting the persistent plan tier when configured."""
        key = None
        if self.plans is not None:
            key = self.plan_key(program, nest)
            cached = self.plans.get(key, self.machine, nest)
            if cached is not None:
                obs.count("pipeline.plan.disk_hits")
                return cached
            obs.count("pipeline.plan.disk_misses")
        plan = self.map_nest(program, nest).plan()
        if self.plans is not None:
            self.plans.put(key, plan)
        return plan
