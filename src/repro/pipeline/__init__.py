"""Staged mapping pipeline with content-addressed stage artifacts.

The paper's pass is a five-stage chain — block-size selection, iteration
tagging, dependence lift, hierarchical distribution, local scheduling —
and for years of this repo's growth that chain existed in three parallel
copies (the mapper, the experiment harness, the service engine), each
with whole-result-only caching.  This package is the single copy: an
explicit :class:`~repro.pipeline.core.Stage` sequence driven by
:class:`~repro.pipeline.core.MappingPipeline`, where every stage
produces an immutable artifact keyed by

    (stage, program digest, nest, topology digest, per-stage knob tuple)

so a request that only changes a *late* knob (α/β, balance threshold,
local scheduling on/off) replays from the deepest cached stage instead
of re-tagging from scratch.  The knob tuple is cumulative — a stage's
key covers its own knobs plus every upstream stage's — which is exactly
the invalidation the chain needs: changing the block size invalidates
everything, changing α/β invalidates only the schedule.

Layout:

* :mod:`repro.pipeline.knobs` — the canonical :class:`Knobs` dataclass
  every cache key in the repo derives its knob tuple from;
* :mod:`repro.pipeline.artifacts` — the immutable, fingerprinted stage
  outputs (:class:`TagArtifact`, :class:`GroupArtifact`,
  :class:`DependenceArtifact`, :class:`TreeAssignment`, and the plan);
* :mod:`repro.pipeline.store` — the in-process LRU artifact store;
* :mod:`repro.pipeline.persist` — the optional persistent plan tier
  (same content-fingerprint discipline as :mod:`repro.experiments.cache`);
* :mod:`repro.pipeline.core` — the stages and the driver;
* :mod:`repro.pipeline.bench` — the cold-vs-warm sweep benchmark
  (``BENCH_pipeline.json``).

See ``docs/ARCHITECTURE.md`` for the full diagram.
"""

from repro.pipeline.artifacts import (
    BlockChoice,
    DependenceArtifact,
    GroupArtifact,
    PlanArtifact,
    TagArtifact,
    TreeAssignment,
)
from repro.pipeline.core import MappingPipeline, Stage
from repro.pipeline.knobs import STAGE_KNOBS, STAGE_ORDER, Knobs
from repro.pipeline.persist import PlanStore
from repro.pipeline.store import ArtifactStore, default_store, reset_default_store

__all__ = [
    "ArtifactStore",
    "BlockChoice",
    "DependenceArtifact",
    "GroupArtifact",
    "Knobs",
    "MappingPipeline",
    "PlanArtifact",
    "PlanStore",
    "STAGE_KNOBS",
    "STAGE_ORDER",
    "Stage",
    "TagArtifact",
    "TreeAssignment",
    "default_store",
    "reset_default_store",
]
