"""Pipeline stage-reuse benchmark (the BENCH_pipeline.json producer).

Times the knob sweep the stage cache was built for: eight knob points
that share everything up to the scheduling stage (six α/β pairs) or up
to distribution (two balance thresholds), swept twice —

* **cold**: a fresh pipeline with no artifact store per point — every
  point pays the full blocksize → tagging → dependence → distribute →
  schedule chain (the pre-refactor cost model);
* **warm**: one shared :class:`~repro.pipeline.store.ArtifactStore`
  across the sweep — the first point computes, the α/β points replay
  four of five stages, the balance points replay three.

Plans are cross-checked for bit-identity between the two sweeps before
timing, so a reported speedup is always a speedup on verified-identical
results.  Two workloads cover the chain's two expensive regimes: a
sequential banded loop (dependence graph + clustering dominate) and a
parallel 2-D stencil (tagging + clustering dominate).

Run directly::

    PYTHONPATH=src python -m repro.pipeline.bench [--out BENCH_pipeline.json]

or through the pytest wrapper in ``benchmarks/perf/``.
"""

from __future__ import annotations

import platform
import time

from repro.kernels.bench import write_report
from repro.lang import compile_source
from repro.pipeline.knobs import Knobs
from repro.pipeline.store import ArtifactStore
from repro.topology.cache import CacheSpec
from repro.topology.tree import Machine, TopologyNode

#: The swept knob points: (alpha, beta, balance_threshold).  Six α/β
#: pairs reuse through distribution; the last two change the balance
#: threshold and reuse through dependence analysis.
KNOB_POINTS = (
    (0.5, 0.5, 0.10),
    (0.3, 0.7, 0.10),
    (0.7, 0.3, 0.10),
    (0.1, 0.9, 0.10),
    (0.9, 0.1, 0.10),
    (0.2, 0.8, 0.10),
    (0.5, 0.5, 0.05),
    (0.3, 0.7, 0.05),
)

#: Default workload sizes; the smoke variant in tests uses smaller ones.
DEFAULT_BAND_M = 512
DEFAULT_STENCIL_N = 32


def bench_machine(cores: int = 8) -> Machine:
    """An 8-core, three-level tree (private L1s, paired L2s, one L3)."""
    l1 = CacheSpec("L1", 1024, 2, 32, 2)
    l2 = CacheSpec("L2", 4096, 4, 32, 8)
    l3 = CacheSpec("L3", 16384, 8, 32, 20)
    leaves = [
        TopologyNode.cache(l1, [TopologyNode.core(i)]) for i in range(cores)
    ]
    l2s = [TopologyNode.cache(l2, leaves[i : i + 2]) for i in range(0, cores, 2)]
    return Machine(f"bench{cores}", 2.0, 100, TopologyNode.cache(l3, l2s),
                   sockets=1)


def banded_workload(m: int):
    """Sequential banded loop: the dependence-heavy regime."""
    source = f"""
    param k = 2;
    array B[{m}];
    for (j = 4; j < {m - 4}; j++)
      B[j] = B[j] + B[j - 2*2];
    """
    return compile_source(source, name=f"band{m}")


def stencil_workload(n: int):
    """Parallel 5-point stencil: the tagging-heavy regime."""
    source = f"""
    array U[{n + 2}][{n + 2}];
    array V[{n + 2}][{n + 2}];
    parallel for (i = 1; i <= {n}; i++)
      for (j = 1; j <= {n}; j++)
        V[i][j] = U[i][j] + U[i-1][j] + U[i+1][j] + U[i][j-1] + U[i][j+1];
    """
    return compile_source(source, name=f"stencil{n}")


def _knobs(alpha: float, beta: float, balance: float, block_size: int) -> Knobs:
    return Knobs(
        block_size=block_size,
        balance_threshold=balance,
        alpha=alpha,
        beta=beta,
        local_scheduling=True,
    )


def _sweep(machine, program, block_size: int, store: ArtifactStore | None):
    """Map the program's first nest at every knob point; return
    (elapsed seconds, plan rounds per point)."""
    from repro.pipeline.core import MappingPipeline

    nest = program.nests[0]
    plans = []
    started = time.perf_counter()
    for alpha, beta, balance in KNOB_POINTS:
        knobs = _knobs(alpha, beta, balance, block_size)
        pipeline = MappingPipeline(machine, knobs, store=store)
        plans.append(pipeline.map_nest(program, nest).plan().rounds)
    return time.perf_counter() - started, plans


def bench_sweep(name: str, program, block_size: int, repeats: int = 1) -> dict:
    """One cold-vs-warm sweep entry; sweeps cross-checked first."""
    machine = bench_machine()

    cold_plans = warm_plans = None
    cold_s = warm_s = float("inf")
    for _ in range(max(1, repeats)):
        elapsed, cold_plans = _sweep(machine, program, block_size, None)
        cold_s = min(cold_s, elapsed)
    for _ in range(max(1, repeats)):
        elapsed, warm_plans = _sweep(
            machine, program, block_size, ArtifactStore(capacity=64)
        )
        warm_s = min(warm_s, elapsed)

    if cold_plans != warm_plans:
        raise AssertionError(
            f"stage reuse changed a plan on {name}: cold and warm sweeps "
            "disagree"
        )

    return {
        "workload": name,
        "machine": machine.name,
        "knob_points": len(KNOB_POINTS),
        "cold_ms": round(cold_s * 1e3, 3),
        "warm_ms": round(warm_s * 1e3, 3),
        "speedup": round(cold_s / warm_s, 2),
    }


def run_suite(repeats: int = 1, band_m: int = DEFAULT_BAND_M,
              stencil_n: int = DEFAULT_STENCIL_N) -> dict:
    """The full pipeline-reuse benchmark report as a JSON-serializable dict."""
    entries = [
        bench_sweep(f"band{band_m}", banded_workload(band_m), 32,
                    repeats=repeats),
        bench_sweep(f"stencil{stencil_n}", stencil_workload(stencil_n), 64,
                    repeats=repeats),
    ]
    return {
        "suite": "repro.pipeline stage-reuse benchmark",
        "python": platform.python_version(),
        "sweep": f"{len(KNOB_POINTS)} knob points "
                 "(6 alpha/beta pairs + 2 balance thresholds)",
        "timing": f"best of {repeats}, cold store vs shared store",
        "entries": entries,
    }


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_pipeline.json")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--band-m", type=int, default=DEFAULT_BAND_M)
    parser.add_argument("--stencil-n", type=int, default=DEFAULT_STENCIL_N)
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    start = time.perf_counter()
    report = run_suite(repeats=args.repeats, band_m=args.band_m,
                       stencil_n=args.stencil_n)
    write_report(report, args.out)
    for entry in report["entries"]:
        print(
            f"{entry['workload']:12s} cold {entry['cold_ms']:8.1f}ms  "
            f"warm {entry['warm_ms']:8.1f}ms  {entry['speedup']:5.2f}x"
        )
    print(f"wrote {args.out} ({time.perf_counter() - start:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
