"""Client API for the mapping service (``repro submit`` is a thin shim).

:class:`ServiceClient` speaks the protocol of :mod:`repro.service.server`
over plain :mod:`http.client` connections — one connection per call, no
pooling, no dependencies.  Transport-level refusals surface as the same
:class:`~repro.service.protocol.ServiceError` subclasses the server
raised (``429`` -> :class:`Overloaded` with its ``Retry-After``, ``503``
-> :class:`Unavailable`, ``400`` -> :class:`BadRequest`), so callers can
implement retry policies against exception types instead of status
codes::

    client = ServiceClient(port=8321)
    try:
        response = client.submit(source=text, machine="dunnington")
    except Overloaded as backoff:
        time.sleep(backoff.retry_after)
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any

from repro.ir.loops import Program
from repro.runtime.serialize import program_to_dict
from repro.service.protocol import (
    BadRequest,
    Overloaded,
    ServiceError,
    Unavailable,
)


class ServiceClient:
    """Blocking client for one service endpoint."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8321, timeout: float = 60.0
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -------------------------------------------------------
    def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        """One HTTP exchange; returns (status, lowercased headers, body)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            header_map = {
                name.lower(): value for name, value in response.getheaders()
            }
            return response.status, header_map, data
        finally:
            connection.close()

    def _json(self, method: str, path: str, body: dict | None = None) -> dict:
        status, headers, data = self.request(method, path, body)
        try:
            decoded = json.loads(data) if data else {}
        except json.JSONDecodeError:
            decoded = {"error": data.decode(errors="replace")}
        if status == 200:
            return decoded
        message = decoded.get("error", f"HTTP {status}")
        if status == 429:
            raise Overloaded(message, retry_after=int(headers.get("retry-after", 1)))
        if status == 503:
            raise Unavailable(message)
        if status == 400:
            raise BadRequest(message)
        error = ServiceError(message)
        error.status = status
        raise error

    # -- verbs -----------------------------------------------------------
    def submit(
        self,
        source: str | None = None,
        program: Program | dict | None = None,
        machine: str | None = None,
        topology: str | None = None,
        nest: int | str = 0,
        scale: float = 1.0,
        knobs: dict[str, Any] | None = None,
        deadline_ms: float | None = None,
        no_cache: bool = False,
        debug_sleep_ms: float | None = None,
        name: str | None = None,
    ) -> dict:
        """Submit one mapping request; returns the decoded response body.

        ``program`` accepts a live :class:`~repro.ir.loops.Program` (it
        is serialized on the way out) or an already-serialized dict.
        """
        body: dict[str, Any] = {"nest": nest}
        if source is not None:
            body["source"] = source
        if program is not None:
            body["program"] = (
                program_to_dict(program)
                if isinstance(program, Program)
                else program
            )
        if machine is not None:
            body["machine"] = machine
        if topology is not None:
            body["topology"] = topology
        if scale != 1.0:
            body["scale"] = scale
        if knobs:
            body["knobs"] = knobs
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        if no_cache:
            body["no_cache"] = True
        if debug_sleep_ms is not None:
            body["debug_sleep_ms"] = debug_sleep_ms
        if name is not None:
            body["name"] = name
        return self._json("POST", "/map", body)

    def remap(
        self,
        event: dict,
        source: str | None = None,
        program: Program | dict | None = None,
        machine: str | None = None,
        topology: str | None = None,
        nest: int | str = 0,
        scale: float = 1.0,
        knobs: dict[str, Any] | None = None,
        dead_cores: list[int] | None = None,
        deadline_ms: float | None = None,
        no_cache: bool = False,
        debug_sleep_ms: float | None = None,
        name: str | None = None,
    ) -> dict:
        """Submit one incremental remap (``POST /remap``).

        The base fields describe the state the caller was mapped under
        (base machine, knobs, plus ``dead_cores`` already offline);
        ``event`` is the transition — see
        :func:`repro.service.protocol.parse_remap_request`.  The
        response carries the post-event plan and a ``"remap"`` stanza
        with the replayed/recomputed stage accounting.
        """
        body: dict[str, Any] = {"nest": nest, "event": event}
        if source is not None:
            body["source"] = source
        if program is not None:
            body["program"] = (
                program_to_dict(program)
                if isinstance(program, Program)
                else program
            )
        if machine is not None:
            body["machine"] = machine
        if topology is not None:
            body["topology"] = topology
        if scale != 1.0:
            body["scale"] = scale
        if knobs:
            body["knobs"] = knobs
        if dead_cores:
            body["dead_cores"] = list(dead_cores)
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        if no_cache:
            body["no_cache"] = True
        if debug_sleep_ms is not None:
            body["debug_sleep_ms"] = debug_sleep_ms
        if name is not None:
            body["name"] = name
        return self._json("POST", "/remap", body)

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def stats(self) -> dict:
        return self._json("GET", "/stats")

    def version(self) -> dict:
        return self._json("GET", "/version")

    def metrics(self) -> str:
        status, _headers, data = self.request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"/metrics answered HTTP {status}")
        return data.decode()

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> None:
        """Poll ``/healthz`` until the service answers (or raise)."""
        deadline = time.monotonic() + timeout
        last_error: Exception | None = None
        while time.monotonic() < deadline:
            try:
                self.health()
                return
            except (OSError, socket.timeout, ServiceError) as error:
                last_error = error
                time.sleep(interval)
        raise Unavailable(
            f"service at {self.host}:{self.port} not ready within "
            f"{timeout:.1f}s: {last_error}"
        )
