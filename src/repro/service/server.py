"""The HTTP/JSON mapping daemon (``repro serve``).

One :class:`MappingService` owns the four moving parts — admission queue,
worker pool, two-tier cache, and stats — behind a stdlib
:class:`~http.server.ThreadingHTTPServer`:

``POST /map``
    Submit a mapping request (see :mod:`repro.service.protocol`).
    Cache hits answer from the handler thread; misses queue for a
    worker.  A full queue answers ``429`` with ``Retry-After``; a
    draining server answers ``503``.
``POST /remap``
    Incrementally remap after a phase change, core loss/hot-plug or
    topology edit (see :func:`~repro.service.protocol.parse_remap_request`
    and :func:`~repro.service.engine.compute_remap`).  Always runs the
    incremental pipeline — no cache read, no coalescing, no
    degradation — and publishes the post-state payload to the mapping
    cache for later ``/map`` traffic.
``GET /healthz``, ``GET /stats``, ``GET /metrics``, ``GET /version``
    Liveness, JSON stats (including cache hit counters and queue depth),
    Prometheus-style text metrics bridged from the :mod:`repro.obs`
    counters/gauges, and the library version.

**Deadline-aware degradation**: a request with ``deadline_ms`` (or the
server default) is checked when a worker picks it up.  If the time
already spent waiting plus the *predicted* pipeline cost (an EWMA of
observed per-iteration pipeline time) exceeds the deadline, the worker
answers with the cheap Base mapping instead and flags the response
``degraded: true`` — a late useful answer beats a timely timeout.

**Tracing**: with ``REPRO_TRACE_DIR`` set at startup, each computed
request writes ``<dir>/request-<id>.jsonl``.  Per-request recorders are
process-global, so traced pipelines serialize through a lock —
observability mode trades throughput for per-request spans.

**Shutdown**: :meth:`MappingService.serve` installs SIGINT/SIGTERM
handlers that stop admissions, drain queued and in-flight work, flush
the persistent cache tier, and only then exit.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import uuid
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import repro
from repro import obs
from repro.errors import ReproError
from repro.service.admission import AdmissionQueue, Job
from repro.service.engine import baseline_mapping, compute_mapping, compute_remap
from repro.service.mapcache import MappingCache, _encode_key
from repro.service.protocol import (
    MappingRequest,
    ServiceError,
    Unavailable,
    parse_remap_request,
    parse_request,
)

#: Environment variable enabling per-request trace capture.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Upper bound on a request body, in bytes (a serialized program for a
#: large nest is ~100KB; 16MB leaves two orders of magnitude of headroom).
MAX_BODY_BYTES = 16 * 1024 * 1024


@dataclass
class ServiceConfig:
    """Tunables for one service instance (all have serving defaults)."""

    host: str = "127.0.0.1"
    port: int = 8321
    queue_size: int = 64
    workers: int = 2
    lru_capacity: int = 512
    cache_dir: str | None = None
    persistent: bool = False
    default_deadline_ms: float | None = None
    hard_timeout_s: float = 300.0
    drain_timeout_s: float = 30.0
    debug: bool = False
    collect_obs: bool = True
    quiet: bool = True


class _LatencyWindow:
    """Lock-free-enough ring of recent request latencies for /stats."""

    def __init__(self, size: int = 512):
        self._size = size
        self._values: list[float] = []
        self._next = 0

    def add(self, value_ms: float) -> None:
        if len(self._values) < self._size:
            self._values.append(value_ms)
        else:
            self._values[self._next] = value_ms
            self._next = (self._next + 1) % self._size

    def summary(self) -> dict:
        if not self._values:
            return {"count": 0}
        ordered = sorted(self._values)
        n = len(ordered)
        return {
            "count": n,
            "p50_ms": round(ordered[n // 2], 3),
            "p95_ms": round(ordered[min(n - 1, (n * 95) // 100)], 3),
            "max_ms": round(ordered[-1], 3),
        }


class ServiceStats:
    """Counter table for the service itself (obs counters ride along)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {}
        self.latency = _LatencyWindow()
        self.obs_counters: dict[str, int] = {}
        # EWMA of pipeline microseconds per iteration: the degradation
        # predictor.  Starts at zero (optimistic) and adapts within a
        # handful of requests.
        self._us_per_iteration = 0.0
        self._ewma_samples = 0

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def observe_latency(self, elapsed_ms: float) -> None:
        with self._lock:
            self.latency.add(elapsed_ms)

    def observe_pipeline(self, elapsed_ms: float, iterations: int) -> None:
        if iterations <= 0:
            return
        sample = elapsed_ms * 1e3 / iterations
        with self._lock:
            if self._ewma_samples == 0:
                self._us_per_iteration = sample
            else:
                self._us_per_iteration += 0.2 * (sample - self._us_per_iteration)
            self._ewma_samples += 1

    def predicted_pipeline_ms(self, iterations: int) -> float:
        with self._lock:
            return self._us_per_iteration * iterations / 1e3

    def merge_obs(self, counters: dict[str, int]) -> None:
        with self._lock:
            for name, value in counters.items():
                self.obs_counters[name] = self.obs_counters.get(name, 0) + value

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "counters": dict(self.counters),
                "latency": self.latency.summary(),
                "pipeline_us_per_iteration": round(self._us_per_iteration, 3),
            }


class MappingService:
    """The daemon: owns the HTTP server, workers, cache, and stats."""

    def __init__(self, config: ServiceConfig | None = None, **overrides):
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a ServiceConfig or keyword overrides")
        self.config = config
        self.stats = ServiceStats()
        self.cache = MappingCache(
            capacity=config.lru_capacity,
            directory=config.cache_dir,
            persistent=config.persistent,
        )
        # The shared final-plan disk tier (repro.pipeline.persist): with
        # persistence on, every worker process of a shard writes through
        # to the same plans-<fp>.json, so a plan computed anywhere serves
        # everywhere (the store is lock+merge safe across processes).
        self.plans = None
        if config.persistent:
            from repro.pipeline.persist import PlanStore

            self.plans = PlanStore(config.cache_dir)
        # Coalescing table: cache_key -> the Job already computing that
        # key.  Followers wait on the leader's Job instead of enqueueing
        # a duplicate compute (hot cold keys cost one pipeline run).
        self._inflight: dict[str, Job] = {}
        self._inflight_lock = threading.Lock()
        self.admission = AdmissionQueue(
            handler=self._process_job,
            queue_size=config.queue_size,
            workers=config.workers,
        )
        self.started_at: float | None = None
        self.draining = False
        self._httpd: ThreadingHTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._own_recorder: obs.Recorder | None = None
        self._trace_dir = os.environ.get(TRACE_DIR_ENV) or None
        self._trace_lock = threading.Lock()
        self._stop_requested = threading.Event()

    # -- lifecycle -------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._httpd is None:
            return self.config.port
        return self._httpd.server_address[1]

    def start(self) -> "MappingService":
        """Bind, start workers and the accept loop; returns immediately."""
        if self._httpd is not None:
            raise ServiceError("service already started")
        if self._trace_dir:
            os.makedirs(self._trace_dir, exist_ok=True)
        elif self.config.collect_obs and not obs.enabled():
            # A sink-less recorder: pipeline decision counters accumulate
            # for /metrics without paying for span serialization.
            self._own_recorder = obs.configure()
        handler = _make_handler(self)
        self._httpd = _ServiceHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self.admission.start()
        self.started_at = time.time()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-service-accept",
        )
        self._serve_thread.start()
        return self

    def stop(self) -> None:
        """Drain-then-exit: reject new work, finish admitted work, close."""
        if self._httpd is None:
            return
        self.draining = True
        self.admission.stop(timeout=self.config.drain_timeout_s)
        self._httpd.shutdown()
        # server_close joins the per-connection handler threads
        # (block_on_close), so no response is cut off mid-write.
        self._httpd.server_close()
        self._serve_thread.join(timeout=self.config.drain_timeout_s)
        self._httpd = None
        self._serve_thread = None
        if self._own_recorder is not None:
            if obs.get_recorder() is self._own_recorder:
                self.stats.merge_obs(self._own_recorder.counters)
                obs.shutdown()
            self._own_recorder = None

    def serve(self) -> int:
        """Blocking entry point with SIGINT/SIGTERM drain-then-exit."""
        self.start()

        def _request_stop(signum, _frame):
            self.stats.bump(f"signal.{signal.Signals(signum).name}")
            self._stop_requested.set()

        previous = {
            sig: signal.signal(sig, _request_stop)
            for sig in (signal.SIGINT, signal.SIGTERM)
        }
        print(
            f"repro service listening on http://{self.config.host}:{self.port} "
            f"(queue={self.config.queue_size}, workers={self.config.workers}, "
            f"cache={'lru+disk' if self.cache.persistent else 'lru'})",
            flush=True,
        )
        try:
            # Timed wait, not a bare .wait(): the kernel may deliver the
            # signal to a busy handler thread, and the Python-level
            # handler only ever runs on the main thread — which must
            # re-enter the eval loop for that to happen.  An untimed
            # semaphore wait never does, and the daemon ignores SIGTERM
            # under load.
            while not self._stop_requested.wait(timeout=0.2):
                pass
        finally:
            print("repro service draining...", flush=True)
            self.stop()
            for sig, old in previous.items():
                signal.signal(sig, old)
            print("repro service stopped.", flush=True)
        return 0

    # -- request processing ---------------------------------------------
    def handle_map(self, payload: dict) -> tuple[int, dict]:
        """The full admission + cache + compute flow for one request.

        Returns ``(http_status, response_body)``; raises
        :class:`ServiceError` subclasses for backpressure and validation
        failures (the transport turns them into their ``status``).
        """
        started = time.monotonic()
        request_id = uuid.uuid4().hex[:12]
        self.stats.bump("requests")
        request = parse_request(
            payload,
            default_deadline_ms=self.config.default_deadline_ms,
            allow_debug=self.config.debug,
        )
        if not request.no_cache:
            hit = self.cache.get(request.cache_key)
            if hit is not None:
                value, tier = hit
                self.stats.bump(f"cache.{tier}")
                return 200, self._respond(
                    request, request_id, value,
                    degraded=False, cache=tier, started=started,
                )
        self.stats.bump("cache.miss" if not request.no_cache else "cache.bypass")
        if self.draining:
            raise Unavailable("service is draining")
        if request.no_cache:
            # Bypass requests demand a fresh compute: they neither join
            # an in-flight job nor become one others may join.
            job = Job(request=request, request_id=request_id)
            self.admission.submit(job)  # raises Overloaded on a full queue
            value = self._await(job, request_id)
            return 200, self._respond(
                request, request_id, value["payload"],
                degraded=bool(value.get("degraded")), cache="bypass",
                started=started, queue_wait_ms=job.queue_wait_ms,
                degraded_reason=value.get("degraded_reason"),
            )
        # Coalescing: exactly one thread becomes the leader for a cold
        # key; the check-and-register is atomic, so concurrent identical
        # requests cost one pipeline compute however they interleave.
        encoded = _encode_key(request.cache_key)
        with self._inflight_lock:
            job = self._inflight.get(encoded)
            leader = job is None
            if leader:
                job = Job(request=request, request_id=request_id)
                self._inflight[encoded] = job
        if not leader:
            self.stats.bump("coalesced")
            obs.count("service.coalesced")
            value = self._await(job, request_id)
            return 200, self._respond(
                request, request_id, value["payload"],
                degraded=bool(value.get("degraded")), cache="coalesced",
                started=started, queue_wait_ms=job.queue_wait_ms,
                degraded_reason=value.get("degraded_reason"),
            )
        try:
            self.admission.submit(job)  # raises Overloaded on a full queue
            value = self._await(job, request_id)
            degraded = bool(value.get("degraded"))
            if not degraded:
                # Publish to the cache *before* retiring the in-flight
                # entry, so a request arriving in between finds one of
                # the two — never a second compute.
                self.cache.put(request.cache_key, value["payload"])
        finally:
            with self._inflight_lock:
                self._inflight.pop(encoded, None)
        return 200, self._respond(
            request, request_id, value["payload"],
            degraded=degraded, cache="none",
            started=started, queue_wait_ms=job.queue_wait_ms,
            degraded_reason=value.get("degraded_reason"),
        )

    def handle_remap(self, payload: dict) -> tuple[int, dict]:
        """The ``POST /remap`` flow: parse pre/post states, remap post.

        Unlike ``/map`` there is no response-cache read, no coalescing
        and no deadline degradation — a remap is an explicit "my state
        changed, recompute what's dirty" and must always run the
        (incremental) pipeline.  The computed post-state payload *is*
        published to the mapping cache, so follow-up ``/map`` traffic
        for the post state hits.
        """
        started = time.monotonic()
        request_id = uuid.uuid4().hex[:12]
        self.stats.bump("requests")
        self.stats.bump("remap_requests")
        remap = parse_remap_request(
            payload,
            default_deadline_ms=self.config.default_deadline_ms,
            allow_debug=self.config.debug,
        )
        if self.draining:
            raise Unavailable("service is draining")
        job = Job(
            request=remap.post, request_id=request_id, kind="remap", remap=remap
        )
        self.admission.submit(job)  # raises Overloaded on a full queue
        value = self._await(job, request_id)
        payload_out = value["payload"]
        if not remap.post.no_cache:
            cacheable = {k: v for k, v in payload_out.items() if k != "remap"}
            self.cache.put(remap.post.cache_key, cacheable)
        return 200, self._respond(
            remap.post, request_id, payload_out,
            degraded=False, cache="none",
            started=started, queue_wait_ms=job.queue_wait_ms,
        )

    def _await(self, job: Job, request_id: str) -> dict:
        """Wait for a job (own or a coalesced leader's) to finish."""
        if not job.done.wait(timeout=self.config.hard_timeout_s):
            self.stats.bump("timeouts")
            raise Unavailable(
                f"request {request_id} exceeded the hard timeout "
                f"({self.config.hard_timeout_s:.0f}s)"
            )
        if job.error is not None:
            raise job.error
        return job.response

    def _respond(
        self,
        request: MappingRequest,
        request_id: str,
        payload: dict,
        degraded: bool,
        cache: str,
        started: float,
        queue_wait_ms: float = 0.0,
        degraded_reason: str | None = None,
    ) -> dict:
        elapsed_ms = (time.monotonic() - started) * 1e3
        self.stats.observe_latency(elapsed_ms)
        if degraded:
            self.stats.bump("degraded")
        body = {
            "ok": True,
            "request_id": request_id,
            "degraded": degraded,
            "cache": cache,
            "key": {
                "nest": request.nest_key,
                "topology": request.topology_key,
                "knobs": list(request.knobs.as_tuple()),
            },
            "elapsed_ms": round(elapsed_ms, 3),
            "queue_wait_ms": round(queue_wait_ms, 3),
        }
        if degraded_reason:
            body["degraded_reason"] = degraded_reason
        body.update(payload)
        return body

    def _process_job(self, job: Job) -> dict:
        """Worker-side: degradation decision + pipeline (or baseline)."""
        request = job.request
        if self.config.debug and request.debug_sleep_ms:
            time.sleep(request.debug_sleep_ms / 1e3)
        if job.kind == "remap":
            # Remap timings stay out of the EWMA degradation predictor:
            # a replayed remap costs ~1ms and would teach the predictor
            # that cold pipelines are free.
            payload = self._run_traced(
                job, lambda request: compute_remap(job.remap, plans=self.plans)
            )
            self.stats.bump("remap_runs")
            return {"payload": payload, "degraded": False}
        degrade_reason = self._should_degrade(job)
        if degrade_reason is not None:
            payload = self._run_traced(job, baseline_mapping)
            return {
                "payload": payload,
                "degraded": True,
                "degraded_reason": degrade_reason,
            }
        started = time.perf_counter()
        payload = self._run_traced(
            job, lambda request: compute_mapping(request, plans=self.plans)
        )
        elapsed_ms = (time.perf_counter() - started) * 1e3
        self.stats.bump("pipeline_runs")
        self.stats.observe_pipeline(elapsed_ms, request.nest.iteration_count())
        return {"payload": payload, "degraded": False}

    def _should_degrade(self, job: Job) -> str | None:
        deadline_ms = job.request.deadline_ms
        if deadline_ms is None:
            return None
        elapsed_ms = (time.monotonic() - job.enqueued) * 1e3
        remaining_ms = deadline_ms - elapsed_ms
        predicted_ms = self.stats.predicted_pipeline_ms(
            job.request.nest.iteration_count()
        )
        if remaining_ms <= predicted_ms:
            return (
                f"deadline {deadline_ms:.0f}ms: {elapsed_ms:.0f}ms spent "
                f"queued, pipeline predicted {predicted_ms:.0f}ms"
            )
        return None

    def _run_traced(self, job: Job, runner) -> dict:
        """Run the engine, capturing a per-request trace when enabled."""
        if not self._trace_dir:
            return runner(job.request)
        from repro.obs.sinks import JsonlSink

        path = os.path.join(self._trace_dir, f"request-{job.request_id}.jsonl")
        # One recorder at a time: per-request tracing serializes the
        # pipeline (documented in docs/SERVICE.md).
        with self._trace_lock:
            with obs.tracing(JsonlSink(path)) as recorder:
                with obs.span("service.request", request_id=job.request_id):
                    result = runner(job.request)
                counters = dict(recorder.counters)
        self.stats.merge_obs(counters)
        return result

    # -- introspection endpoints ----------------------------------------
    def stats_payload(self) -> dict:
        payload = self.stats.snapshot()
        payload.update(
            version=repro.__version__,
            uptime_s=round(time.time() - self.started_at, 3)
            if self.started_at
            else 0.0,
            draining=self.draining,
            queue={
                "size": self.config.queue_size,
                "depth": self.admission.depth(),
                "in_flight": self.admission.in_flight(),
                "workers": self.config.workers,
                "submitted": self.admission.submitted,
                "rejected": self.admission.rejected,
            },
            cache=self.cache.stats(),
        )
        return payload

    def metrics_text(self) -> str:
        """Prometheus-style exposition of service + obs counters."""
        stats = self.stats_payload()
        lines = [
            "# TYPE repro_service_uptime_seconds gauge",
            f"repro_service_uptime_seconds {stats['uptime_s']}",
            f"repro_service_draining {int(stats['draining'])}",
            f"repro_service_queue_depth {stats['queue']['depth']}",
            f"repro_service_queue_in_flight {stats['queue']['in_flight']}",
            f"repro_service_queue_rejected_total {stats['queue']['rejected']}",
        ]
        for name, value in sorted(stats["counters"].items()):
            metric = name.replace(".", "_").replace("-", "_")
            lines.append(f"repro_service_{metric}_total {value}")
        cache = stats["cache"]
        for tier in ("memory", "disk"):
            lines.append(
                f'repro_service_cache_hits_total{{tier="{tier}"}} '
                f"{cache[f'hits_{tier}']}"
            )
        lines.append(f"repro_service_cache_misses_total {cache['misses']}")
        lines.append(f"repro_service_cache_entries {cache['entries']}")
        latency = stats["latency"]
        for key in ("p50_ms", "p95_ms", "max_ms"):
            if key in latency:
                lines.append(
                    f"repro_service_latency_{key.replace('_ms', '')}_ms "
                    f"{latency[key]}"
                )
        obs_counters = dict(self.stats.obs_counters)
        recorder = obs.get_recorder()
        if recorder is not None and recorder is self._own_recorder:
            for name, value in recorder.counters.items():
                obs_counters[name] = obs_counters.get(name, 0) + value
        for name, value in sorted(obs_counters.items()):
            lines.append(f'repro_obs_counter{{name="{name}"}} {value}')
        return "\n".join(lines) + "\n"


# -- HTTP plumbing -------------------------------------------------------
class _ServiceHTTPServer(ThreadingHTTPServer):
    """The daemon's listener with a burst-proof accept backlog.

    The stdlib default (``request_queue_size = 5``) resets connections
    when more than a handful of clients connect in the same instant —
    real under the load benchmark's thread pool.
    """

    request_queue_size = 128


def _make_handler(service: MappingService):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = f"repro-service/{repro.__version__}"

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            if not service.config.quiet:
                BaseHTTPRequestHandler.log_message(self, format, *args)

        # -- helpers ---------------------------------------------------
        def _send_json(
            self, status: int, body: dict, headers: dict | None = None
        ) -> None:
            data = json.dumps(body).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def _send_error_json(self, error: Exception) -> None:
            if isinstance(error, ServiceError):
                status = error.status
                headers = {}
                if error.retry_after is not None:
                    headers["Retry-After"] = str(error.retry_after)
                service.stats.bump(f"http.{status}")
                self._send_json(
                    status, {"ok": False, "error": str(error)}, headers
                )
                return
            if isinstance(error, ReproError):
                service.stats.bump("http.400")
                self._send_json(400, {"ok": False, "error": str(error)})
                return
            service.stats.bump("http.500")
            self._send_json(
                500,
                {"ok": False, "error": f"{type(error).__name__}: {error}"},
            )

        # -- verbs -----------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - stdlib casing
            path = self.path.split("?", 1)[0]
            if path == "/healthz":
                status = "draining" if service.draining else "ok"
                self._send_json(200, {"status": status})
            elif path == "/stats":
                self._send_json(200, service.stats_payload())
            elif path == "/metrics":
                data = service.metrics_text().encode()
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; version=0.0.4")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)
            elif path == "/version":
                from repro.runtime.serialize import (
                    FORMAT_VERSION,
                    PROGRAM_FORMAT_VERSION,
                )

                self._send_json(
                    200,
                    {
                        "version": repro.__version__,
                        "plan_format": FORMAT_VERSION,
                        "program_format": PROGRAM_FORMAT_VERSION,
                    },
                )
            else:
                self._send_json(404, {"ok": False, "error": f"no route {path!r}"})

        def do_POST(self) -> None:  # noqa: N802 - stdlib casing
            path = self.path.split("?", 1)[0]
            routes = {"/map": service.handle_map, "/remap": service.handle_remap}
            handler = routes.get(path)
            if handler is None:
                self._send_json(404, {"ok": False, "error": f"no route {path!r}"})
                return
            from repro.service.protocol import BadRequest

            try:
                length = int(self.headers.get("Content-Length", 0))
                if length <= 0:
                    raise BadRequest("empty request body")
                if length > MAX_BODY_BYTES:
                    raise BadRequest(
                        f"request body of {length} bytes exceeds the "
                        f"{MAX_BODY_BYTES} byte limit"
                    )
                try:
                    payload = json.loads(self.rfile.read(length))
                except json.JSONDecodeError as error:
                    raise BadRequest(f"malformed JSON body: {error}") from None
                status, body = handler(payload)
                service.stats.bump(f"http.{status}")
                self._send_json(status, body)
            except Exception as error:  # noqa: BLE001 - boundary
                self._send_error_json(error)

    return Handler


def _default_workers() -> int:
    return max(1, min(4, (os.cpu_count() or 2) - 1))
