"""Sharded multi-process serving: a front router over N forked workers.

``repro serve --workers N`` (N >= 2) runs this topology::

                        +--------------------------+
     clients ---------> |  ShardService (router)   |
                        |  - consistent-hash ring  |
                        |  - hot-key response cache|
                        |  - health check/restart  |
                        |  - stats aggregation     |
                        +-----+--------+-----------+
                              |        |     ... SIGTERM fan-out on drain
                        HTTP proxy   HTTP proxy
                              |        |
                    +---------v--+  +--v---------+
                    | worker w0  |  | worker w1  |   forked processes,
                    | Mapping-   |  | Mapping-   |   each a full single-
                    | Service    |  | Service    |   process MappingService
                    +-----+------+  +------+-----+   on an internal port
                          |                |
                          +-------+--------+
                                  v
                  shared cache directory (PlanStore +
                  mapping disk tier, file-locked merge-on-write)

Routing is by **program digest**: the router hashes each request's
program (its ``source`` text or serialized ``program`` object) onto a
consistent-hash ring of worker slots, so one program's requests always
land on the same worker — that worker's stage-artifact store and mapping
LRU stay hot, and concurrent identical requests meet in one process
where the coalescing table merges them into one compute.  Each worker is
a *forked* child running the ordinary :class:`MappingService` on an
ephemeral loopback port (the "socket-passing" variant: ports travel back
to the router over a pipe; kernel-level ``SO_REUSEPORT`` sharding is
deliberately not used for request traffic because it would scatter a
program's requests across workers and defeat both affinity and
coalescing — where available it is set on the router's listening socket
so a replacement router can bind during handover).

The router keeps a small LRU of **verbatim response bytes** keyed by the
sha256 of the raw request body: byte-identical repeats of a cacheable
request (no ``no_cache``, previous answer ``ok`` and not degraded) are
answered without touching a worker — the hot-key fast path that lets a
shard beat the single process even on warm-dominated traffic.

Failure model: if a worker dies mid-request (e.g. SIGKILL), the proxy's
connection breaks, the in-flight request answers a clean ``503`` with
``Retry-After``, and the router restarts the slot immediately; the
health thread additionally sweeps for silently dead workers every
``health_interval_s``.  Restarts keep the slot name, so the ring — and
therefore every other key's placement — is untouched.  On SIGTERM the
router stops admitting, waits for in-flight proxies, SIGTERMs every
worker (each drains its own queue and exits 0), reaps them, optionally
compacts the shared plan tier (single-writer: the router, after the
workers are gone), and exits 0.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import multiprocessing
import signal
import socket
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import repro
from repro.service.hashring import HashRing
from repro.service.server import (
    MAX_BODY_BYTES,
    MappingService,
    ServiceConfig,
    _LatencyWindow,
)

__all__ = ["ShardConfig", "ShardService", "shard_key"]


def shard_key(payload: dict) -> str:
    """The routing digest of one request: a digest of its program.

    ``source`` requests hash the source text; ``program`` requests hash
    the canonical JSON of the serialized program.  The digest only needs
    to be deterministic and program-identifying — workers still compute
    the canonical content key themselves.
    """
    source = payload.get("source")
    if isinstance(source, str):
        raw = "s:" + source
    else:
        raw = "p:" + json.dumps(
            payload.get("program"), sort_keys=True, separators=(",", ":"),
            default=str,
        )
    return hashlib.sha256(raw.encode()).hexdigest()


@dataclass
class ShardConfig:
    """Tunables for one sharded service (router + workers)."""

    host: str = "127.0.0.1"
    port: int = 8321
    workers: int = 2
    threads: int = 2
    queue_size: int = 64
    lru_capacity: int = 512
    cache_dir: str | None = None
    persistent: bool = False
    default_deadline_ms: float | None = None
    hard_timeout_s: float = 300.0
    drain_timeout_s: float = 30.0
    debug: bool = False
    quiet: bool = True
    #: Router-level verbatim-response LRU; 0 disables it.
    router_cache_capacity: int = 1024
    #: Dead-worker sweep period for the health thread.
    health_interval_s: float = 0.25
    #: Per-proxied-request timeout (must dominate the worker's own).
    proxy_timeout_s: float = 310.0
    #: Virtual nodes per worker slot on the hash ring.
    ring_replicas: int = 64
    #: Cap the shared plan tier at this many entries on drain-time
    #: compaction (None skips compaction).
    compact_max_plans: int | None = 4096


class _RouterCache:
    """Thread-safe LRU of verbatim response bytes, keyed by body digest."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._lru: OrderedDict[str, bytes] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def get(self, key: str) -> bytes | None:
        with self._lock:
            data = self._lru.get(key)
            if data is None:
                self.misses += 1
                return None
            self._lru.move_to_end(key)
            self.hits += 1
            return data

    def put(self, key: str, data: bytes) -> None:
        with self._lock:
            self._lru[key] = data
            self._lru.move_to_end(key)
            while len(self._lru) > self.capacity:
                self._lru.popitem(last=False)
                self.evictions += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._lru),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


def _worker_main(config: ServiceConfig, slot: str, conn) -> None:
    """Entry point of one forked worker process.

    Runs a plain single-process :class:`MappingService` on an ephemeral
    loopback port, reports the bound port back through ``conn``, then
    waits for SIGTERM and drains.  SIGINT is ignored — an interactive
    Ctrl-C reaches the whole process group, and the router owns the
    shutdown sequence.
    """
    stop = threading.Event()
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, lambda _signum, _frame: stop.set())
    service = MappingService(config)
    try:
        service.start()
    except BaseException as error:  # noqa: BLE001 - report, then die
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        finally:
            conn.close()
        raise
    conn.send(("port", service.port))
    conn.close()
    stop.wait()
    service.stop()


class _WorkerDown(Exception):
    """A proxied request could not be completed against its worker."""


class WorkerHandle:
    """One worker slot: a stable ring identity over restartable processes."""

    def __init__(self, slot: str):
        self.slot = slot
        self.process: multiprocessing.Process | None = None
        self.port: int | None = None
        self.restarts = 0
        self.started_at: float | None = None

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def describe(self) -> dict:
        return {
            "slot": self.slot,
            "pid": self.pid,
            "port": self.port,
            "alive": self.alive(),
            "restarts": self.restarts,
        }


class ShardService:
    """The front router and its pool of worker processes."""

    def __init__(self, config: ShardConfig | None = None, **overrides):
        if config is None:
            config = ShardConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a ShardConfig or keyword overrides")
        if config.workers < 1:
            raise ValueError(f"workers must be >= 1, got {config.workers}")
        self.config = config
        self.ring = HashRing(
            [f"w{i}" for i in range(config.workers)],
            replicas=config.ring_replicas,
        )
        self.workers: list[WorkerHandle] = [
            WorkerHandle(f"w{i}") for i in range(config.workers)
        ]
        self._by_slot = {handle.slot: handle for handle in self.workers}
        self._cache = (
            _RouterCache(config.router_cache_capacity)
            if config.router_cache_capacity > 0
            else None
        )
        self.latency = _LatencyWindow()
        self.counters: dict[str, int] = {}
        self._counters_lock = threading.Lock()
        self.draining = False
        self.started_at: float | None = None
        self._httpd: ThreadingHTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._health_thread: threading.Thread | None = None
        self._stop_health = threading.Event()
        self._stop_requested = threading.Event()
        self._spawn_lock = threading.Lock()
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        self._mp = multiprocessing.get_context(
            "fork" if sys.platform.startswith("linux") else "spawn"
        )
        self._worker_exits: dict[str, int | None] = {}

    # -- small helpers ---------------------------------------------------
    def bump(self, name: str, n: int = 1) -> None:
        with self._counters_lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def _worker_config(self) -> ServiceConfig:
        c = self.config
        return ServiceConfig(
            host="127.0.0.1",
            port=0,
            queue_size=c.queue_size,
            workers=c.threads,
            lru_capacity=c.lru_capacity,
            cache_dir=c.cache_dir,
            persistent=c.persistent,
            default_deadline_ms=c.default_deadline_ms,
            hard_timeout_s=c.hard_timeout_s,
            drain_timeout_s=c.drain_timeout_s,
            debug=c.debug,
            collect_obs=True,
            quiet=True,
        )

    # -- worker lifecycle ------------------------------------------------
    def _spawn_into(self, handle: WorkerHandle) -> None:
        """Start (or restart) the process behind one slot."""
        parent_conn, child_conn = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=_worker_main,
            args=(self._worker_config(), handle.slot, child_conn),
            name=f"repro-shard-{handle.slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(30.0):
                raise RuntimeError(f"worker {handle.slot} never reported a port")
            kind, value = parent_conn.recv()
        except (EOFError, OSError) as error:
            process.kill()
            raise RuntimeError(
                f"worker {handle.slot} died during startup"
            ) from error
        finally:
            parent_conn.close()
        if kind != "port":
            process.join(timeout=5.0)
            raise RuntimeError(f"worker {handle.slot} failed to start: {value}")
        handle.process = process
        handle.port = value
        handle.started_at = time.time()

    def _restart(self, handle: WorkerHandle) -> bool:
        """Restart a dead slot (serialized; no-op while draining/alive)."""
        with self._spawn_lock:
            if self.draining or handle.alive():
                return handle.alive()
            if handle.process is not None:
                handle.process.join(timeout=1.0)
            handle.restarts += 1
            self.bump("worker_restarts")
            try:
                self._spawn_into(handle)
            except RuntimeError:
                self.bump("worker_restart_failures")
                return False
            if not self.config.quiet:
                print(
                    f"repro shard: restarted worker {handle.slot} "
                    f"(pid {handle.pid}, port {handle.port})",
                    flush=True,
                )
            return True

    def _health_loop(self) -> None:
        while not self._stop_health.wait(self.config.health_interval_s):
            for handle in self.workers:
                if not handle.alive() and not self.draining:
                    self._restart(handle)

    # -- lifecycle -------------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is None:
            return self.config.port
        return self._httpd.server_address[1]

    def start(self) -> "ShardService":
        if self._httpd is not None:
            raise RuntimeError("shard service already started")
        for handle in self.workers:
            self._spawn_into(handle)
        handler = _make_router_handler(self)
        server = _RouterHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._httpd = server
        self.started_at = time.time()
        self._serve_thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-shard-accept",
        )
        self._serve_thread.start()
        self._health_thread = threading.Thread(
            target=self._health_loop, name="repro-shard-health"
        )
        self._health_thread.start()
        return self

    def stop(self) -> None:
        """Drain-then-exit: router first refuses, then the workers drain."""
        if self._httpd is None:
            return
        self.draining = True
        self._stop_health.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
            self._health_thread = None
        # Let in-flight proxied requests finish before tearing workers down.
        deadline = time.monotonic() + self.config.drain_timeout_s
        with self._inflight_cv:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._inflight_cv.wait(timeout=remaining)
        for handle in self.workers:
            if handle.alive():
                handle.process.terminate()  # SIGTERM: the worker drains
        for handle in self.workers:
            if handle.process is None:
                continue
            handle.process.join(timeout=self.config.drain_timeout_s)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=5.0)
            self._worker_exits[handle.slot] = handle.process.exitcode
        if self.config.persistent and self.config.compact_max_plans is not None:
            self._compact_plan_tier()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=self.config.drain_timeout_s)
            self._serve_thread = None
        self._httpd = None

    def _compact_plan_tier(self) -> None:
        """Single-writer compaction, run once the workers are gone."""
        from repro.pipeline.persist import PlanStore

        try:
            summary = PlanStore(self.config.cache_dir).compact(
                max_entries=self.config.compact_max_plans
            )
        except OSError:
            return
        if summary is not None:
            self.bump("plan_compactions")

    def serve(self) -> int:
        """Blocking entry point with SIGINT/SIGTERM drain-then-exit."""
        self.start()

        def _request_stop(signum, _frame):
            self.bump(f"signal.{signal.Signals(signum).name}")
            self._stop_requested.set()

        previous = {
            sig: signal.signal(sig, _request_stop)
            for sig in (signal.SIGINT, signal.SIGTERM)
        }
        print(
            f"repro service listening on http://{self.config.host}:{self.port} "
            f"(shard: workers={self.config.workers}, "
            f"threads={self.config.threads}, queue={self.config.queue_size}, "
            f"router-cache={self.config.router_cache_capacity})",
            flush=True,
        )
        try:
            # Timed wait so pending signals caught on handler threads get
            # processed: the Python-level handler only runs on the main
            # thread, and only when it re-enters the eval loop.  A bare
            # .wait() parks the main thread in an uninterruptible
            # semaphore and the router ignores SIGTERM under load.
            while not self._stop_requested.wait(timeout=0.2):
                pass
        finally:
            print("repro service draining...", flush=True)
            self.stop()
            for sig, old in previous.items():
                signal.signal(sig, old)
            for slot in sorted(self._worker_exits):
                print(
                    f"repro shard: worker {slot} exited "
                    f"{self._worker_exits[slot]}",
                    flush=True,
                )
            print("repro service stopped.", flush=True)
        return 0

    # -- proxying --------------------------------------------------------
    def _proxy(
        self,
        handle: WorkerHandle,
        method: str,
        path: str,
        body: bytes | None = None,
        timeout: float | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One HTTP exchange with a worker; raises :class:`_WorkerDown`."""
        if handle.port is None:
            raise _WorkerDown(f"worker {handle.slot} has no port")
        connection = http.client.HTTPConnection(
            "127.0.0.1", handle.port,
            timeout=timeout or self.config.proxy_timeout_s,
        )
        try:
            headers = {}
            if body is not None:
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            header_map = {
                name.lower(): value for name, value in response.getheaders()
            }
            return response.status, header_map, data
        except (OSError, http.client.HTTPException) as error:
            raise _WorkerDown(
                f"worker {handle.slot} (pid {handle.pid}): "
                f"{type(error).__name__}: {error}"
            ) from error
        finally:
            connection.close()

    def handle_map(
        self, raw: bytes, path: str = "/map"
    ) -> tuple[int, dict[str, str], bytes]:
        """Route one ``POST /map`` or ``POST /remap`` body.

        Both verbs route by the same program digest, so a ``/remap``
        lands on the worker whose artifact store is warm from that
        program's earlier ``/map`` traffic — that warmth is exactly what
        makes the remap incremental.  Returns (status, headers, body).
        """
        started = time.monotonic()
        self.bump("requests")
        if path == "/remap":
            self.bump("remap_requests")
        if self._cache is not None:
            # The digest is namespaced by path: a /map and a /remap with
            # identical bodies must never serve each other's responses.
            digest = hashlib.sha256(path.encode() + b"\0" + raw).hexdigest()
            hit = self._cache.get(digest)
            if hit is not None:
                self.bump("router_cache.hits")
                self.latency.add((time.monotonic() - started) * 1e3)
                return 200, {}, hit
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
        except ValueError as error:
            self.bump("http.400")
            return 400, {}, _error_body(f"malformed JSON body: {error}")
        if self.draining:
            self.bump("http.503")
            return 503, {"Retry-After": "1"}, _error_body("service is draining")
        no_cache = payload.get("no_cache") is True
        slot = self.ring.node_for(shard_key(payload))
        handle = self._by_slot[slot]
        if not handle.alive():
            # Found dead before the request was sent: restarting and
            # forwarding is safe (nothing was executed yet).
            self.bump("worker_dead_on_arrival")
            if not self._restart(handle):
                self.bump("http.503")
                return 503, {"Retry-After": "1"}, _error_body(
                    f"worker {slot} is down and could not be restarted"
                )
        try:
            status, headers, data = self._proxy(handle, "POST", path, raw)
        except _WorkerDown as error:
            # Mid-request failure: the compute may or may not have run,
            # so never retry silently — answer a clean 503 and restart
            # the slot for the next request.
            self.bump("worker_failures")
            self.bump("http.503")
            threading.Thread(
                target=self._restart, args=(handle,), daemon=True
            ).start()
            return 503, {"Retry-After": "1"}, _error_body(
                f"shard worker failed mid-request ({error}); retry"
            )
        self.bump(f"http.{status}")
        out_headers = {}
        if "retry-after" in headers:
            out_headers["Retry-After"] = headers["retry-after"]
        if status == 200:
            data = self._annotate(slot, no_cache, digest_raw=raw, data=data, path=path)
        self.latency.add((time.monotonic() - started) * 1e3)
        return status, out_headers, data

    def _annotate(
        self,
        slot: str,
        no_cache: bool,
        digest_raw: bytes,
        data: bytes,
        path: str = "/map",
    ) -> bytes:
        """Tag a 200 response with its worker; cache it when cacheable."""
        try:
            parsed = json.loads(data)
        except ValueError:
            return data
        parsed["worker"] = slot
        cacheable = (
            self._cache is not None
            and not no_cache
            and parsed.get("ok") is True
            and not parsed.get("degraded")
        )
        if cacheable:
            # Stored verbatim: a router-cache hit replays these bytes
            # (with ``cache`` rewritten) without any JSON work.
            replay = dict(parsed)
            replay["cache"] = "router"
            self._cache.put(
                hashlib.sha256(path.encode() + b"\0" + digest_raw).hexdigest(),
                json.dumps(replay).encode(),
            )
        return json.dumps(parsed).encode()

    def track_inflight(self, delta: int) -> None:
        with self._inflight_cv:
            self._inflight += delta
            if self._inflight == 0:
                self._inflight_cv.notify_all()

    # -- introspection ---------------------------------------------------
    def _worker_stats(self, handle: WorkerHandle) -> dict:
        info = handle.describe()
        if not handle.alive():
            info["reachable"] = False
            return info
        try:
            status, _headers, data = self._proxy(
                handle, "GET", "/stats", timeout=5.0
            )
            info["reachable"] = status == 200
            if status == 200:
                info["stats"] = json.loads(data)
        except (_WorkerDown, ValueError):
            info["reachable"] = False
        return info

    def stats_payload(self) -> dict:
        workers = [self._worker_stats(handle) for handle in self.workers]
        totals: dict[str, int] = {}
        queue = {"depth": 0, "in_flight": 0, "submitted": 0, "rejected": 0}
        for info in workers:
            stats = info.get("stats")
            if not stats:
                continue
            for name, value in stats.get("counters", {}).items():
                totals[name] = totals.get(name, 0) + value
            for field_ in queue:
                queue[field_] += stats.get("queue", {}).get(field_, 0)
        with self._counters_lock:
            router_counters = dict(self.counters)
        return {
            "mode": "shard",
            "version": repro.__version__,
            "uptime_s": round(time.time() - self.started_at, 3)
            if self.started_at
            else 0.0,
            "draining": self.draining,
            "router": {
                "counters": router_counters,
                "latency": self.latency.summary(),
                "cache": self._cache.stats() if self._cache else None,
                "ring": {
                    "nodes": self.ring.nodes,
                    "replicas": self.ring.replicas,
                },
                "inflight": self._inflight,
            },
            "counters": totals,
            "queue": queue,
            "workers": workers,
        }

    def metrics_text(self) -> str:
        stats = self.stats_payload()
        lines = [
            "# TYPE repro_service_uptime_seconds gauge",
            f"repro_service_uptime_seconds {stats['uptime_s']}",
            f"repro_service_draining {int(stats['draining'])}",
            f"repro_shard_workers {len(self.workers)}",
            f"repro_shard_workers_alive "
            f"{sum(1 for h in self.workers if h.alive())}",
            f"repro_service_queue_depth {stats['queue']['depth']}",
            f"repro_service_queue_in_flight {stats['queue']['in_flight']}",
            f"repro_service_queue_rejected_total {stats['queue']['rejected']}",
        ]
        for name, value in sorted(stats["router"]["counters"].items()):
            metric = name.replace(".", "_").replace("-", "_")
            lines.append(f"repro_router_{metric}_total {value}")
        cache = stats["router"]["cache"]
        if cache is not None:
            lines.append(f"repro_router_cache_hits_total {cache['hits']}")
            lines.append(f"repro_router_cache_misses_total {cache['misses']}")
            lines.append(f"repro_router_cache_entries {cache['entries']}")
        for name, value in sorted(stats["counters"].items()):
            metric = name.replace(".", "_").replace("-", "_")
            lines.append(f"repro_service_{metric}_total {value}")
        for handle in self.workers:
            lines.append(
                f'repro_shard_worker_restarts_total{{slot="{handle.slot}"}} '
                f"{handle.restarts}"
            )
        latency = stats["router"]["latency"]
        for key in ("p50_ms", "p95_ms", "max_ms"):
            if key in latency:
                lines.append(
                    f"repro_router_latency_{key.replace('_ms', '')}_ms "
                    f"{latency[key]}"
                )
        return "\n".join(lines) + "\n"

    def health_payload(self) -> dict:
        alive = sum(1 for handle in self.workers if handle.alive())
        status = "draining" if self.draining else "ok"
        return {
            "status": status,
            "workers": {"alive": alive, "total": len(self.workers)},
        }


class _RouterHTTPServer(ThreadingHTTPServer):
    """The router's listener; SO_REUSEPORT where the platform has it.

    ``request_queue_size`` deepens the accept backlog past the stdlib
    default of 5, which resets connections under bursts of concurrent
    clients.
    """

    request_queue_size = 128

    def server_bind(self):
        if hasattr(socket, "SO_REUSEPORT"):  # pragma: no branch
            try:
                self.socket.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
                )
            except OSError:
                pass
        super().server_bind()


def _error_body(message: str) -> bytes:
    return json.dumps({"ok": False, "error": message}).encode()


def _make_router_handler(service: ShardService):
    class RouterHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = f"repro-shard-router/{repro.__version__}"

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            if not service.config.quiet:
                BaseHTTPRequestHandler.log_message(self, format, *args)

        def _send(
            self,
            status: int,
            data: bytes,
            content_type: str = "application/json",
            headers: dict | None = None,
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:  # noqa: N802 - stdlib casing
            path = self.path.split("?", 1)[0]
            if path == "/healthz":
                self._send(200, json.dumps(service.health_payload()).encode())
            elif path == "/stats":
                self._send(200, json.dumps(service.stats_payload()).encode())
            elif path == "/metrics":
                self._send(
                    200,
                    service.metrics_text().encode(),
                    content_type="text/plain; version=0.0.4",
                )
            elif path == "/version":
                from repro.runtime.serialize import (
                    FORMAT_VERSION,
                    PROGRAM_FORMAT_VERSION,
                )

                self._send(
                    200,
                    json.dumps(
                        {
                            "version": repro.__version__,
                            "plan_format": FORMAT_VERSION,
                            "program_format": PROGRAM_FORMAT_VERSION,
                            "mode": "shard",
                        }
                    ).encode(),
                )
            else:
                self._send(404, _error_body(f"no route {path!r}"))

        def do_POST(self) -> None:  # noqa: N802 - stdlib casing
            path = self.path.split("?", 1)[0]
            if path not in ("/map", "/remap"):
                self._send(404, _error_body(f"no route {path!r}"))
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                if length <= 0:
                    self._send(400, _error_body("empty request body"))
                    return
                if length > MAX_BODY_BYTES:
                    self._send(
                        400,
                        _error_body(
                            f"request body of {length} bytes exceeds the "
                            f"{MAX_BODY_BYTES} byte limit"
                        ),
                    )
                    return
                raw = self.rfile.read(length)
                service.track_inflight(+1)
                try:
                    status, headers, data = service.handle_map(raw, path=path)
                finally:
                    service.track_inflight(-1)
                self._send(status, data, headers=headers)
            except Exception as error:  # noqa: BLE001 - transport boundary
                service.bump("http.500")
                self._send(
                    500, _error_body(f"{type(error).__name__}: {error}")
                )

    return RouterHandler
