"""Load benchmark for the mapping service (single vs. sharded).

Boots the real daemon as a subprocess — the same entry point operators
run — and drives a deterministic mixed workload against it:

* **cold** requests: first sighting of a distinct program, a full
  pipeline compute;
* **warm** requests: byte-identical repeats, answered by a cache tier
  (the worker LRU in single mode, the router byte-cache in shard mode);
* **degraded** requests: ``deadline_ms=0`` under a scaled topology, so
  the deadline governor must hand back a cheap fallback.

The request schedule is a pure function of the seed: the same programs,
the same ordering, the same class mix, whichever serving mode is under
test.  ``run_benchmark`` measures single-process and sharded serving on
the identical schedule and reports the throughput ratio; the CLI wrapper
(``scripts/service_load.py``) writes the report to ``BENCH_service.json``
and fails on any happy-path 5xx.

Percentile note: p50/p99 are linear-interpolation percentiles over the
per-request wall latencies observed by the client threads, so they
include queueing at the router and in the admission queue — what a
caller actually experiences.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import re
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.service.client import ServiceClient

#: Program shapes: the loop bound is the only varying dimension, which
#: keeps every variant cheap to compute while giving each a distinct
#: content digest (and hence a distinct shard slot and cache key).
SOURCE_TEMPLATE = """\
param m = {m};
array B[{m}];
array Q[{m}];
parallel for (i = 0; i < m; i++)
  B[i] = B[i] + Q[i] + Q[m - 1 - i];
"""

DEGRADED_SOURCE = SOURCE_TEMPLATE.format(m=96)


@dataclass
class BenchConfig:
    """One load run; ``requests`` is the measured request count."""

    requests: int = 20_000
    programs: int = 24          # distinct cold programs in the mix
    concurrency: int = 16       # client threads
    workers: int = 4            # shard worker processes under test
    threads: int = 2            # HTTP/admission threads per process
    queue_size: int = 128
    degraded_share: float = 0.01
    seed: int = 20100607        # the paper's conference week
    timeout_s: float = 120.0

    def __post_init__(self):
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if not 1 <= self.programs <= self.requests:
            raise ValueError("programs must be in [1, requests]")
        if not 0.0 <= self.degraded_share < 1.0:
            raise ValueError("degraded_share must be in [0, 1)")


@dataclass
class Sample:
    label: str                  # cold | warm | degraded
    status: int
    elapsed_ms: float
    cache: str | None = None
    error: str | None = None


@dataclass
class LoadResult:
    mode: str
    wall_s: float
    samples: list[Sample] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return len(self.samples) / self.wall_s if self.wall_s > 0 else 0.0


def build_schedule(config: BenchConfig) -> list[dict]:
    """The deterministic request schedule for one run.

    Every entry is a ready-to-send ``/map`` payload plus its class
    label.  Each of the ``programs`` variants appears exactly once as a
    cold request (spread through the run); everything else is a warm
    repeat of an already-seen variant or a degraded-deadline probe.
    """
    rng = random.Random(config.seed)
    variants = [
        SOURCE_TEMPLATE.format(m=16 + 8 * index)
        for index in range(config.programs)
    ]
    # Cold positions: one per variant, the first at index 0 so the run
    # never opens with a warm request that has nothing to hit.
    cold_positions = {0: 0}
    free = rng.sample(range(1, config.requests), config.programs - 1)
    for variant_index, position in enumerate(sorted(free), start=1):
        cold_positions[position] = variant_index

    schedule: list[dict] = []
    seen = 0
    for position in range(config.requests):
        if position in cold_positions:
            variant = cold_positions[position]
            seen = max(seen, variant + 1)
            schedule.append({
                "label": "cold",
                "payload": {"source": variants[variant],
                            "machine": "dunnington", "scale": 32},
            })
        elif rng.random() < config.degraded_share:
            schedule.append({
                "label": "degraded",
                "payload": {"source": DEGRADED_SOURCE, "machine": "nehalem",
                            "scale": 4, "deadline_ms": 0},
            })
        else:
            schedule.append({
                "label": "warm",
                "payload": {"source": variants[rng.randrange(seen)],
                            "machine": "dunnington", "scale": 32},
            })
    return schedule


# -- daemon management ---------------------------------------------------

def _repo_src() -> str:
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def boot_daemon(workers: int, threads: int, queue_size: int):
    """Start ``repro serve`` as a subprocess; returns (proc, port).

    The daemon's (and thus every worker's) stderr goes to a temp file,
    not a pipe: a pipe nobody drains for a 20k-request run would fill
    and block the daemon, and on failure we want the tail back —
    ``daemon_stderr_tail(proc)`` reads it.
    """
    env = dict(os.environ)
    src = _repo_src()
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    stderr_file = tempfile.NamedTemporaryFile(
        mode="w+", prefix="repro-serve-", suffix=".stderr", delete=False
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", str(workers), "--threads", str(threads),
         "--queue-size", str(queue_size)],
        stdout=subprocess.PIPE, stderr=stderr_file, text=True, env=env,
    )
    proc.stderr_path = stderr_file.name
    banner = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", banner)
    if not match:
        proc.kill()
        proc.wait(timeout=10)
        stderr = daemon_stderr_tail(proc, limit=500)
        raise RuntimeError(f"no port in daemon banner {banner!r}: {stderr}")
    return proc, int(match.group(1))


def daemon_stderr_tail(proc, limit: int = 4000) -> str:
    """The last ``limit`` characters the daemon (or its workers) wrote
    to stderr; the temp file is removed on the way out."""
    path = getattr(proc, "stderr_path", None)
    if not path:
        return ""
    try:
        with open(path, encoding="utf-8", errors="replace") as handle:
            text = handle.read()
    except OSError:
        return ""
    try:
        os.unlink(path)
    except OSError:
        pass
    return text[-limit:]


def shutdown_daemon(proc) -> int | None:
    proc.send_signal(signal.SIGTERM)
    try:
        return proc.wait(timeout=90)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)
        return None


# -- load generation -----------------------------------------------------

def _fire(port: int, entry: dict, timeout_s: float) -> Sample:
    client = ServiceClient(port=port, timeout=timeout_s)
    started = time.perf_counter()
    try:
        status, _headers, body = client.request(
            "POST", "/map", entry["payload"]
        )
    except OSError as error:
        elapsed_ms = (time.perf_counter() - started) * 1e3
        return Sample(entry["label"], -1, elapsed_ms, error=str(error))
    elapsed_ms = (time.perf_counter() - started) * 1e3
    cache = None
    if status == 200:
        try:
            cache = json.loads(body).get("cache")
        except ValueError:
            pass
    return Sample(entry["label"], status, elapsed_ms, cache=cache)


def run_load(port: int, schedule: list[dict], config: BenchConfig,
             mode: str) -> LoadResult:
    """Push the whole schedule through ``concurrency`` client threads."""
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=config.concurrency) as pool:
        futures = [
            pool.submit(_fire, port, entry, config.timeout_s)
            for entry in schedule
        ]
        samples = [future.result() for future in futures]
    wall_s = time.perf_counter() - started
    return LoadResult(mode=mode, wall_s=wall_s, samples=samples)


def _percentile(sorted_values: list[float], q: float) -> float | None:
    if not sorted_values:
        return None
    if len(sorted_values) == 1:
        return round(sorted_values[0], 3)
    rank = q * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    frac = rank - low
    return round(
        sorted_values[low] * (1 - frac) + sorted_values[high] * frac, 3
    )


def summarize(result: LoadResult) -> dict:
    """Counts, tiers, and client-observed latency percentiles."""
    statuses: dict[str, int] = {}
    tiers: dict[str, int] = {}
    by_label: dict[str, list[float]] = {}
    errors: list[str] = []
    for sample in result.samples:
        statuses[str(sample.status)] = statuses.get(str(sample.status), 0) + 1
        if sample.cache is not None:
            tiers[sample.cache] = tiers.get(sample.cache, 0) + 1
        by_label.setdefault(sample.label, []).append(sample.elapsed_ms)
        if sample.error and len(errors) < 5:
            errors.append(sample.error)
    all_ms = sorted(ms for values in by_label.values() for ms in values)
    summary = {
        "mode": result.mode,
        "requests": len(result.samples),
        "wall_s": round(result.wall_s, 3),
        "throughput_rps": round(result.throughput_rps, 2),
        "statuses": statuses,
        "cache_tiers": tiers,
        "latency_ms": {
            "p50": _percentile(all_ms, 0.50),
            "p99": _percentile(all_ms, 0.99),
            "max": round(all_ms[-1], 3) if all_ms else None,
        },
        "by_class": {
            label: {
                "count": len(values),
                "p50": _percentile(sorted(values), 0.50),
                "p99": _percentile(sorted(values), 0.99),
            }
            for label, values in sorted(by_label.items())
        },
    }
    if errors:
        summary["transport_errors"] = errors
    return summary


def count_5xx(result: LoadResult) -> int:
    """Happy-path failures: 5xx or transport errors (status -1)."""
    return sum(1 for s in result.samples if s.status >= 500 or s.status < 0)


# -- the benchmark -------------------------------------------------------

def run_one_mode(config: BenchConfig, workers: int,
                 schedule: list[dict]) -> tuple[dict, int, int | None]:
    mode = "shard" if workers >= 2 else "single"
    proc, port = boot_daemon(workers, config.threads, config.queue_size)
    try:
        client = ServiceClient(port=port, timeout=config.timeout_s)
        client.wait_ready(timeout=60)
        result = run_load(port, schedule, config, mode=mode)
    finally:
        exit_code = shutdown_daemon(proc)
        stderr_tail = daemon_stderr_tail(proc)
    summary = summarize(result)
    summary["workers"] = workers
    summary["daemon_exit_code"] = exit_code
    bad = count_5xx(result)
    if stderr_tail and (bad or exit_code != 0):
        summary["daemon_stderr_tail"] = stderr_tail
    return summary, bad, exit_code


def run_benchmark(config: BenchConfig | None = None, *,
                  compare_single: bool = True) -> dict:
    """Measure sharded serving (and optionally the single baseline).

    Returns the ``BENCH_service.json`` payload; the caller decides what
    to do about ``bad_requests``.
    """
    config = config or BenchConfig()
    schedule = build_schedule(config)
    class_counts: dict[str, int] = {}
    for entry in schedule:
        class_counts[entry["label"]] = class_counts.get(entry["label"], 0) + 1

    report = {
        "benchmark": "repro.service.bench",
        "config": {
            "requests": config.requests,
            "programs": config.programs,
            "concurrency": config.concurrency,
            "workers": config.workers,
            "threads": config.threads,
            "queue_size": config.queue_size,
            "degraded_share": config.degraded_share,
            "seed": config.seed,
        },
        "schedule_classes": class_counts,
        "runs": [],
        "bad_requests": 0,
    }

    modes = ([1] if compare_single else []) + [config.workers]
    for workers in modes:
        summary, bad, exit_code = run_one_mode(config, workers, schedule)
        report["runs"].append(summary)
        report["bad_requests"] += bad
        if exit_code not in (0,):
            report["bad_requests"] += 1
            summary["clean_exit"] = False

    if compare_single and len(report["runs"]) == 2:
        single, shard = report["runs"]
        if single["throughput_rps"] > 0:
            report["speedup"] = round(
                shard["throughput_rps"] / single["throughput_rps"], 2
            )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Load-benchmark the mapping service "
                    "(single vs. sharded).")
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--requests", type=int, default=20_000)
    parser.add_argument("--programs", type=int, default=24)
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--queue-size", type=int, default=128)
    parser.add_argument("--seed", type=int, default=20100607)
    parser.add_argument(
        "--no-compare", action="store_true",
        help="skip the single-process baseline run",
    )
    args = parser.parse_args(argv)

    config = BenchConfig(
        requests=args.requests, programs=min(args.programs, args.requests),
        concurrency=args.concurrency, workers=args.workers,
        threads=args.threads, queue_size=args.queue_size, seed=args.seed,
    )
    report = run_benchmark(config, compare_single=not args.no_compare)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    for run in report["runs"]:
        print(
            f"{run['mode']:>6} (workers={run['workers']}): "
            f"{run['throughput_rps']:.1f} req/s, "
            f"p50={run['latency_ms']['p50']}ms, "
            f"p99={run['latency_ms']['p99']}ms, "
            f"statuses={run['statuses']}"
        )
    if "speedup" in report:
        print(f"speedup (shard vs single): {report['speedup']}x")
    if report["bad_requests"]:
        print(
            f"FAIL: {report['bad_requests']} happy-path 5xx/transport "
            f"failures -> {args.out}",
            file=sys.stderr,
        )
        for run in report["runs"]:
            tail = run.get("daemon_stderr_tail")
            if tail:
                print(
                    f"--- daemon stderr tail ({run['mode']}, "
                    f"workers={run['workers']}) ---\n{tail}",
                    file=sys.stderr,
                )
        return 1
    print(f"service load OK -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
