"""Per-request pipeline execution for the mapping service.

:func:`compute_mapping` runs the full topology-aware pipeline for one
validated request and returns the JSON-serializable payload the server
caches and ships; :func:`baseline_mapping` is the cheap fallback used
under deadline pressure (the Base scheme — a contiguous block
distribution needs no tagging, clustering or scheduling, so it costs
microseconds where the pipeline costs milliseconds).

Both produce the same payload shape, with the plan serialized through
:mod:`repro.runtime.serialize` so a client can reconstruct and validate
an :class:`~repro.mapping.distribute.ExecutablePlan` from the response.
"""

from __future__ import annotations

import json
import time

from repro import obs
from repro.mapping.baselines import base_plan
from repro.mapping.distribute import ExecutablePlan, TopologyAwareMapper
from repro.runtime.serialize import plan_to_json
from repro.service.protocol import MappingRequest


def _payload(
    request: MappingRequest, plan: ExecutablePlan, stats: dict
) -> dict:
    stats = dict(stats)
    stats.update(
        iterations=request.nest.iteration_count(),
        cores=request.machine.num_cores,
        rounds=plan.num_rounds,
        per_core_iterations=[
            len(plan.core_iterations(core)) for core in range(len(plan.rounds))
        ],
    )
    return {
        "scheme": plan.label,
        "nest": request.nest.name,
        "machine": request.machine.name,
        "mapping": json.loads(plan_to_json(plan)),
        "stats": stats,
    }


def compute_mapping(request: MappingRequest) -> dict:
    """Run the full pipeline; the result is the cacheable response body."""
    knobs = request.knobs
    mapper = TopologyAwareMapper(
        request.machine,
        block_size=knobs.block_size,
        balance_threshold=knobs.balance_threshold,
        alpha=knobs.alpha,
        beta=knobs.beta,
        local_scheduling=knobs.local_scheduling,
        dependence_policy=knobs.dependence_policy,
        cluster_strategy=knobs.cluster_strategy,
    )
    started = time.perf_counter()
    with obs.span(
        "service.pipeline",
        nest=request.nest.name,
        machine=request.machine.name,
    ):
        result = mapper.map_nest(request.program, request.nest)
    elapsed_ms = (time.perf_counter() - started) * 1e3
    obs.count("service.pipeline.runs")
    plan = result.plan()
    stats = {
        "groups": len(result.group_set),
        "blocks": result.partition.num_blocks,
        "block_size": result.partition.block_size,
        "pipeline_ms": round(elapsed_ms, 3),
        "timings_ms": {
            phase: round(seconds * 1e3, 3)
            for phase, seconds in result.timings.items()
        },
    }
    return _payload(request, plan, stats)


def baseline_mapping(request: MappingRequest) -> dict:
    """The degradation fallback: the Base scheme's contiguous chunks."""
    started = time.perf_counter()
    with obs.span(
        "service.baseline",
        nest=request.nest.name,
        machine=request.machine.name,
    ):
        plan = base_plan(request.nest, request.machine)
    elapsed_ms = (time.perf_counter() - started) * 1e3
    obs.count("service.baseline.runs")
    return _payload(request, plan, {"pipeline_ms": round(elapsed_ms, 3)})
