"""Per-request pipeline execution for the mapping service.

:func:`compute_mapping` runs the staged mapping pipeline
(:class:`~repro.pipeline.core.MappingPipeline`) for one validated
request and returns the JSON-serializable payload the server caches and
ships; :func:`baseline_mapping` is the cheap fallback used under
deadline pressure (the Base scheme — a contiguous block distribution
needs no tagging, clustering or scheduling, so it costs microseconds
where the pipeline costs milliseconds).

Requests share the process-wide artifact store, so two requests that
differ only in late knobs (α/β, the balance threshold) replay the early
stages from cache even when their full-response cache keys differ —
that reuse sits *under* the response-level
:class:`~repro.service.mapcache.MappingCache`, which still provides
exact whole-payload hits.

Both entry points produce the same payload shape, with the plan
serialized through :mod:`repro.runtime.serialize` so a client can
reconstruct and validate an
:class:`~repro.mapping.distribute.ExecutablePlan` from the response.
"""

from __future__ import annotations

import time

from repro import obs
from repro.mapping.baselines import base_plan
from repro.mapping.distribute import ExecutablePlan
from repro.pipeline.core import MappingPipeline
from repro.pipeline.store import default_store
from repro.runtime.serialize import plan_to_dict
from repro.service.protocol import MappingRequest, RemapRequest


def _payload(
    request: MappingRequest, plan: ExecutablePlan, stats: dict
) -> dict:
    stats = dict(stats)
    stats.update(
        iterations=request.nest.iteration_count(),
        cores=request.machine.num_cores,
        rounds=plan.num_rounds,
        per_core_iterations=[
            sum(len(rnd) for rnd in core_rounds) for core_rounds in plan.rounds
        ],
    )
    return {
        "scheme": plan.label,
        "nest": request.nest.name,
        "machine": request.machine.name,
        "mapping": plan_to_dict(plan),
        "stats": stats,
    }


def compute_mapping(request: MappingRequest, plans=None) -> dict:
    """Run the staged pipeline; the result is the cacheable response body.

    ``plans`` optionally names the shared
    :class:`~repro.pipeline.persist.PlanStore` disk tier: a hit serves
    the persisted final plan (possibly computed by a sibling worker
    process of the shard) without running any stage, and a computed plan
    is written through for the siblings.
    """
    pipeline = MappingPipeline(
        request.machine, request.knobs, store=default_store(), plans=plans
    )
    if plans is not None:
        plan_key = pipeline.plan_key(request.program, request.nest)
        started = time.perf_counter()
        cached = plans.get(plan_key, request.machine, request.nest)
        if cached is not None:
            obs.count("service.plan_tier.hits")
            elapsed_ms = (time.perf_counter() - started) * 1e3
            return _payload(
                request, cached,
                {"pipeline_ms": round(elapsed_ms, 3), "plan_tier": "disk"},
            )
        obs.count("service.plan_tier.misses")
    started = time.perf_counter()
    with obs.span(
        "service.pipeline",
        nest=request.nest.name,
        machine=request.machine.name,
    ):
        result = pipeline.map_nest(request.program, request.nest)
    elapsed_ms = (time.perf_counter() - started) * 1e3
    obs.count("service.pipeline.runs")
    plan = result.plan()
    if plans is not None:
        plans.put(plan_key, plan)
    stats = {
        "groups": len(result.group_set),
        "blocks": result.partition.num_blocks,
        "block_size": result.partition.block_size,
        "pipeline_ms": round(elapsed_ms, 3),
        "timings_ms": {
            phase: round(seconds * 1e3, 3)
            for phase, seconds in result.timings.items()
        },
    }
    return _payload(request, plan, stats)


def compute_remap(remap: RemapRequest, plans=None) -> dict:
    """Incrementally remap one nest after an event (``POST /remap``).

    Carries the machine-independent stage prefix from the pre-state's
    keys to the post-state's when the topology changed (see
    :func:`repro.remap.core.carry_prefix`), then maps the post state
    with the shared artifact store — replayed stages hit, dirtied ones
    recompute.  The result is the exact payload a ``/map`` of the post
    state would produce, extended with a ``"remap"`` stanza accounting
    for what was replayed vs recomputed.

    The response-level mapping cache and the plan disk tier are *not*
    consulted: the point of the endpoint is an honest incremental
    recompute of the post state (a computed plan is still written
    through to ``plans`` for later ``/map`` traffic).
    """
    from repro.remap.core import carry_prefix

    pre, post = remap.pre, remap.post
    store = default_store()
    carried = 0
    if pre.topology_key != post.topology_key:
        carried = carry_prefix(
            store, post.program, post.nest,
            pre.machine, post.machine, pre.knobs, post.knobs,
        )
    replayed = recomputed = 0

    def observe(stage: str, hit: bool) -> None:
        nonlocal replayed, recomputed
        if hit:
            replayed += 1
        else:
            recomputed += 1

    kind = remap.event.get("kind", "unknown")
    pipeline = MappingPipeline(
        post.machine, post.knobs, store=store, observer=observe
    )
    started = time.perf_counter()
    with obs.span(
        "service.remap",
        nest=post.nest.name,
        machine=post.machine.name,
        event=kind,
    ) as sp:
        result = pipeline.map_nest(post.program, post.nest)
        sp.tag(replayed=replayed, recomputed=recomputed, carried=carried)
    elapsed_ms = (time.perf_counter() - started) * 1e3
    obs.count("remap.stages_replayed", replayed)
    obs.count("remap.stages_recomputed", recomputed)
    obs.count(f"remap.events.{kind}")
    plan = result.plan()
    if plans is not None:
        plans.put(pipeline.plan_key(post.program, post.nest), plan)
    stats = {
        "groups": len(result.group_set),
        "blocks": result.partition.num_blocks,
        "block_size": result.partition.block_size,
        "pipeline_ms": round(elapsed_ms, 3),
        "timings_ms": {
            phase: round(seconds * 1e3, 3)
            for phase, seconds in result.timings.items()
        },
    }
    payload = _payload(post, plan, stats)
    payload["remap"] = {
        "event": remap.event,
        "stages_replayed": replayed,
        "stages_recomputed": recomputed,
        "carried": carried,
        "pre_machine": pre.machine.name,
        "machine": post.machine.name,
        "cores": post.machine.num_cores,
    }
    return payload


def baseline_mapping(request: MappingRequest) -> dict:
    """The degradation fallback: the Base scheme's contiguous chunks."""
    started = time.perf_counter()
    with obs.span(
        "service.baseline",
        nest=request.nest.name,
        machine=request.machine.name,
    ):
        plan = base_plan(request.nest, request.machine)
    elapsed_ms = (time.perf_counter() - started) * 1e3
    obs.count("service.baseline.runs")
    return _payload(request, plan, {"pipeline_ms": round(elapsed_ms, 3)})
