"""Mapping-as-a-service: the run-time oracle in front of the pipeline.

The paper's pass is a compile-time component, but its natural deployment
(as in Paulino & Delgado's run-time decomposition work) is a long-running
oracle that programs query with a loop nest and a cache topology and get
a mapping back.  This package serves the full
tag -> affinity -> cluster -> balance -> schedule pipeline over HTTP/JSON
with nothing beyond the standard library:

* :mod:`repro.service.protocol` — request/response schema, content keys;
* :mod:`repro.service.engine` — pipeline + baseline execution per request;
* :mod:`repro.service.mapcache` — two-tier (LRU + persistent) result cache;
* :mod:`repro.service.admission` — bounded queue and worker pool;
* :mod:`repro.service.server` — the HTTP daemon (``repro serve``);
* :mod:`repro.service.client` — the client API (``repro submit``);
* :mod:`repro.service.hashring` — consistent hashing for shard routing;
* :mod:`repro.service.shard` — the multi-process sharded mode
  (``repro serve --workers N``): front router, forked workers,
  health-checked restarts, aggregated stats;
* :mod:`repro.service.bench` — the load benchmark (``BENCH_service.json``).

Quick start::

    from repro.service import MappingService, ServiceClient

    service = MappingService()         # ephemeral port, in-process cache
    service.start()
    client = ServiceClient(port=service.port)
    response = client.submit(source=SOURCE_TEXT, machine="dunnington")
    service.stop()

See ``docs/SERVICE.md`` for the protocol, the degradation semantics, and
the cache-tier behavior.
"""

from repro.service.client import ServiceClient
from repro.service.hashring import HashRing
from repro.service.mapcache import MappingCache
from repro.service.protocol import (
    BadRequest,
    MappingRequest,
    Overloaded,
    ServiceError,
    Unavailable,
    parse_request,
)
from repro.service.server import MappingService, ServiceConfig
from repro.service.shard import ShardConfig, ShardService

__all__ = [
    "BadRequest",
    "HashRing",
    "MappingCache",
    "MappingRequest",
    "MappingService",
    "Overloaded",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ShardConfig",
    "ShardService",
    "Unavailable",
    "parse_request",
]
