"""Consistent-hash ring for the sharded mapping service.

The front router assigns every request to a worker *slot* by hashing
the request's program digest onto a ring of virtual nodes (``replicas``
points per slot, sha256-placed).  Two properties make this the right
structure for the service:

* **affinity** — the same program digest always lands on the same
  worker, so a worker's in-process stage-artifact store and mapping LRU
  stay hot for "its" programs, and concurrent identical requests meet
  in one process where the coalescing table can merge them;
* **minimal disruption** — adding or removing one of N slots remaps
  only the keys that hash into the changed slot's arcs (≈K/N of K keys),
  so a worker restart or a resize does not shuffle the whole key space.

The ring is deterministic in the set of nodes: insertion order does not
matter, and there is no random placement, so two routers built over the
same worker set route identically (property-tested in
``tests/service/test_hashring.py``).
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]


def _point(value: str) -> int:
    """A 64-bit ring position for one string."""
    return int.from_bytes(hashlib.sha256(value.encode()).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over string node names."""

    def __init__(self, nodes: tuple | list = (), replicas: int = 64):
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        self._hashes: list[int] = []
        for node in nodes:
            self.add(node)

    # -- membership ------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Add a node (raises on duplicates — slots are unique)."""
        if not isinstance(node, str) or not node:
            raise ValueError(f"node must be a non-empty string, got {node!r}")
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        self._rebuild()

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(node)
        self._nodes.remove(node)
        self._rebuild()

    def _rebuild(self) -> None:
        # Ties between virtual points are broken by node name, so the
        # ring is a pure function of the node *set*.
        points = sorted(
            (_point(f"{node}#{replica}"), node)
            for node in self._nodes
            for replica in range(self.replicas)
        )
        self._points = points
        self._hashes = [h for h, _node in points]

    # -- routing ---------------------------------------------------------
    def node_for(self, key: str) -> str:
        """The owning node of ``key`` (the first point at/after its hash)."""
        if not self._points:
            raise ValueError("cannot route on an empty hash ring")
        index = bisect.bisect_left(self._hashes, _point(key)) % len(self._points)
        return self._points[index][1]

    def distribution(self, keys) -> dict[str, int]:
        """Key counts per node — a balance diagnostic for tests/stats."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts
