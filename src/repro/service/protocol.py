"""Request/response schema and content keys for the mapping service.

A mapping request carries three things: *what to map* (``lang`` source
text or a serialized program — the :mod:`repro.runtime.serialize` wire
format), *where to run it* (a named machine from
:mod:`repro.topology.machines` or an inline topology spec string for
:mod:`repro.topology.parser`), and *how* (the mapper knobs of
Section 4.1).  :func:`parse_request` validates a decoded JSON body into
a :class:`MappingRequest`, whose :attr:`MappingRequest.cache_key` is the
canonical ``(nest digest, topology digest, knob tuple)`` triple that
keys both cache tiers.

Errors are :class:`ServiceError` subclasses carrying the HTTP status the
server should answer with, so the transport layer never needs to guess.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.experiments.cache import machine_digest
from repro.ir.loops import LoopNest, Program
from repro.lang import compile_source
from repro.pipeline.knobs import Knobs
from repro.runtime.serialize import program_digest, program_from_dict
from repro.topology.tree import Machine

__all__ = [
    "KNOB_DEFAULTS",
    "BadRequest",
    "Knobs",
    "MappingRequest",
    "Overloaded",
    "RemapRequest",
    "ServiceError",
    "Unavailable",
    "parse_remap_request",
    "parse_request",
]

#: Knob names accepted in a request's ``knobs`` object, with defaults.
#: ``block_size=None`` means the Section 4.1 heuristic.  Values mirror
#: :class:`repro.pipeline.knobs.Knobs` — the canonical knob dataclass
#: every cache key in the repo derives from — but the wire surface stays
#: the historical seven (``max_groups``/``refine`` are not request
#: knobs; clients get the defaults).
KNOB_DEFAULTS: dict[str, Any] = {
    "block_size": None,
    "balance_threshold": 0.10,
    "alpha": 0.5,
    "beta": 0.5,
    "local_scheduling": True,
    "dependence_policy": "barrier",
    "cluster_strategy": "greedy",
}


class ServiceError(ReproError):
    """Base class for service-level failures; carries an HTTP status."""

    status = 500

    def __init__(self, message: str, retry_after: int | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class BadRequest(ServiceError):
    """The request body is malformed or references unknown entities."""

    status = 400


class Overloaded(ServiceError):
    """The admission queue is full; retry after ``retry_after`` seconds."""

    status = 429

    def __init__(self, message: str, retry_after: int = 1):
        super().__init__(message, retry_after=max(1, int(retry_after)))


class Unavailable(ServiceError):
    """The service is draining or a request timed out internally."""

    status = 503


@dataclass
class MappingRequest:
    """One validated mapping request, ready for the engine."""

    program: Program
    nest: LoopNest
    machine: Machine
    knobs: Knobs
    deadline_ms: float | None = None
    no_cache: bool = False
    debug_sleep_ms: float = 0.0
    program_key: str = field(default="", repr=False)
    topology_key: str = field(default="", repr=False)

    def __post_init__(self) -> None:
        if not self.program_key:
            self.program_key = program_digest(self.program)
        if not self.topology_key:
            self.topology_key = machine_digest(self.machine)

    @property
    def nest_key(self) -> str:
        """Digest of (program, nest): the "nest digest" of the cache key."""
        return f"{self.program_key[:24]}:{self.nest.name}"

    @property
    def cache_key(self) -> tuple:
        """(nest digest, topology digest, knob tuple)."""
        return (self.nest_key, self.topology_key, self.knobs.as_tuple())


def _require(payload: dict, kind: type, key: str, default: Any = None) -> Any:
    value = payload.get(key, default)
    if value is None:
        return None
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, kind) or (kind is not bool and isinstance(value, bool)):
        raise BadRequest(
            f"field {key!r} must be {kind.__name__}, got {type(value).__name__}"
        )
    return value


def _parse_knobs(payload: dict) -> Knobs:
    raw = payload.get("knobs", {})
    if not isinstance(raw, dict):
        raise BadRequest("'knobs' must be an object")
    unknown = set(raw) - set(KNOB_DEFAULTS)
    if unknown:
        raise BadRequest(
            f"unknown knobs {sorted(unknown)}; known: {sorted(KNOB_DEFAULTS)}"
        )
    values = dict(KNOB_DEFAULTS)
    values.update(raw)
    try:
        return Knobs(
            block_size=(
                None if values["block_size"] is None else int(values["block_size"])
            ),
            balance_threshold=float(values["balance_threshold"]),
            alpha=float(values["alpha"]),
            beta=float(values["beta"]),
            local_scheduling=bool(values["local_scheduling"]),
            dependence_policy=str(values["dependence_policy"]),
            cluster_strategy=str(values["cluster_strategy"]),
        )
    except ReproError as error:
        # Knobs.__post_init__ rejects bad policies/strategies/sizes with
        # the same messages the service historically produced.
        raise BadRequest(str(error)) from None
    except (TypeError, ValueError) as error:
        raise BadRequest(f"malformed knobs: {error}") from None


def _parse_program(payload: dict) -> Program:
    source = payload.get("source")
    serialized = payload.get("program")
    if (source is None) == (serialized is None):
        raise BadRequest("provide exactly one of 'source' or 'program'")
    if source is not None:
        if not isinstance(source, str):
            raise BadRequest("'source' must be a string of lang text")
        try:
            return compile_source(source, name=str(payload.get("name", "request")))
        except ReproError as error:
            raise BadRequest(f"source does not compile: {error}") from None
    if not isinstance(serialized, dict):
        raise BadRequest("'program' must be a serialized program object")
    try:
        return program_from_dict(serialized)
    except ReproError as error:
        raise BadRequest(f"malformed serialized program: {error}") from None


def _parse_machine(payload: dict) -> Machine:
    name = payload.get("machine")
    spec = payload.get("topology")
    if (name is None) == (spec is None):
        raise BadRequest("provide exactly one of 'machine' or 'topology'")
    try:
        if name is not None:
            if not isinstance(name, str):
                raise BadRequest("'machine' must be a machine name")
            from repro.topology.resolve import resolve_machine

            machine = resolve_machine(name)
        else:
            if not isinstance(spec, str):
                raise BadRequest("'topology' must be a topology spec string")
            from repro.topology.parser import parse_topology

            machine = parse_topology(spec)
    except ServiceError:
        raise
    except ReproError as error:
        raise BadRequest(str(error)) from None
    scale = _require(payload, float, "scale", 1.0)
    if scale <= 0:
        raise BadRequest(f"scale must be positive, got {scale}")
    if scale != 1.0:
        machine = machine.with_scaled_caches(1.0 / scale)
    return machine


def _select_nest(program: Program, payload: dict) -> LoopNest:
    selector = payload.get("nest", 0)
    if isinstance(selector, bool) or not isinstance(selector, (int, str)):
        raise BadRequest("'nest' must be an index or a nest name")
    if isinstance(selector, str):
        try:
            return program.nest(selector)
        except ReproError as error:
            raise BadRequest(str(error)) from None
    if not 0 <= selector < len(program.nests):
        raise BadRequest(
            f"nest index {selector} out of range; program has "
            f"{len(program.nests)} nest(s)"
        )
    return program.nests[selector]


def parse_request(
    payload: Any,
    default_deadline_ms: float | None = None,
    allow_debug: bool = False,
) -> MappingRequest:
    """Validate a decoded JSON body into a :class:`MappingRequest`.

    ``default_deadline_ms`` applies when the request names no deadline;
    ``allow_debug`` gates the test-only ``debug_sleep_ms`` field (ignored
    unless the server was started with debugging on).
    """
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    program = _parse_program(payload)
    machine = _parse_machine(payload)
    nest = _select_nest(program, payload)
    knobs = _parse_knobs(payload)
    deadline_ms = _require(payload, float, "deadline_ms", default_deadline_ms)
    if deadline_ms is not None and deadline_ms < 0:
        raise BadRequest(f"deadline_ms must be >= 0, got {deadline_ms}")
    no_cache = payload.get("no_cache", False)
    if not isinstance(no_cache, bool):
        raise BadRequest("'no_cache' must be a boolean")
    debug_sleep_ms = _require(payload, float, "debug_sleep_ms", 0.0) or 0.0
    if debug_sleep_ms and not allow_debug:
        raise BadRequest("debug_sleep_ms requires a server started with --debug")
    return MappingRequest(
        program=program,
        nest=nest,
        machine=machine,
        knobs=knobs,
        deadline_ms=deadline_ms,
        no_cache=no_cache,
        debug_sleep_ms=debug_sleep_ms,
    )


# -- /remap ----------------------------------------------------------------

#: Knobs a phase-change event may adjust: the wire surface plus the
#: tagging guard (phase shifts legitimately coarsen/refine grouping).
_EVENT_KNOBS = set(KNOB_DEFAULTS) | {"max_groups"}

_INT_EVENT_KNOBS = frozenset({"block_size", "max_groups"})
_FLOAT_EVENT_KNOBS = frozenset({"balance_threshold", "alpha", "beta"})
_BOOL_EVENT_KNOBS = frozenset({"local_scheduling"})


@dataclass
class RemapRequest:
    """One validated remap request: pre-event and post-event states.

    ``pre`` is the state the caller was running under (base machine
    minus ``dead_cores``, the request knobs); ``post`` is the state the
    event transitions to.  The engine carries the machine-independent
    stage prefix from pre-keys to post-keys and maps ``post`` — the
    response's plan is always a plan *of the post state*.
    """

    pre: MappingRequest
    post: MappingRequest
    event: dict  # canonical echo, JSON-serializable


def _parse_core_list(raw: Any, field_name: str) -> tuple[int, ...]:
    if not isinstance(raw, list) or any(
        isinstance(c, bool) or not isinstance(c, int) or c < 0 for c in raw
    ):
        raise BadRequest(f"{field_name!r} must be a list of non-negative core ids")
    if len(set(raw)) != len(raw):
        raise BadRequest(f"duplicate core ids in {field_name!r}")
    return tuple(sorted(raw))


def _coerce_event_knob(name: str, value: Any):
    try:
        if name in _INT_EVENT_KNOBS:
            return None if value is None else int(value)
        if name in _FLOAT_EVENT_KNOBS:
            return float(value)
        if name in _BOOL_EVENT_KNOBS:
            if not isinstance(value, bool):
                raise BadRequest(f"knob {name!r} must be a boolean")
            return value
        return str(value)
    except (TypeError, ValueError) as error:
        raise BadRequest(f"malformed knob {name!r}: {error}") from None


def _prune(machine: Machine, dead: tuple[int, ...], what: str) -> Machine:
    try:
        return machine.without_cores(dead)
    except ReproError as error:
        raise BadRequest(f"{what}: {error}") from None


def parse_remap_request(
    payload: Any,
    default_deadline_ms: float | None = None,
    allow_debug: bool = False,
) -> RemapRequest:
    """Validate a ``/remap`` body into a :class:`RemapRequest`.

    The body is a regular ``/map`` body — describing the *base* machine
    and the knobs the caller was mapped with — plus:

    * ``dead_cores`` (optional): physical core ids already offline
      before this event (the caller's accumulated dead-set);
    * ``event`` (required): ``{"kind": "phase_change", "knobs": {...}}``,
      ``{"kind": "core_loss"|"core_hotplug", "cores": [...]}``, or
      ``{"kind": "topology_edit", "topology": spec | "machine": name
      [, "scale": s]}``.

    Core ids are always physical ids of the *base* machine.
    """
    base = parse_request(payload, default_deadline_ms, allow_debug)
    raw_event = payload.get("event")
    if not isinstance(raw_event, dict):
        raise BadRequest("'event' must be an object")
    dead = _parse_core_list(payload.get("dead_cores", []), "dead_cores")
    base_cores = set(base.machine.core_ids())
    if set(dead) - base_cores:
        raise BadRequest(
            f"dead_cores {sorted(set(dead) - base_cores)} not in the base machine"
        )
    pre_machine = _prune(base.machine, dead, "dead_cores")

    from repro.remap.events import (
        CoreHotplug,
        CoreLoss,
        PhaseChange,
        TopologyEdit,
        event_to_dict,
        parse_event,
    )

    try:
        event = parse_event(raw_event)
    except ReproError as error:
        raise BadRequest(str(error)) from None

    post_knobs = base.knobs
    if isinstance(event, PhaseChange):
        unknown = sorted(set(event.knob_changes) - _EVENT_KNOBS)
        if unknown:
            raise BadRequest(
                f"unknown event knobs {unknown}; known: {sorted(_EVENT_KNOBS)}"
            )
        changes = {
            name: _coerce_event_knob(name, value)
            for name, value in event.knob_changes.items()
        }
        try:
            post_knobs = base.knobs.replace(**changes)
        except ReproError as error:
            raise BadRequest(str(error)) from None
        post_machine = pre_machine
        echo: dict = {"kind": "phase_change", "knobs": changes}
    elif isinstance(event, CoreLoss):
        overlap = sorted(set(event.cores) & set(dead))
        if overlap:
            raise BadRequest(f"core_loss for already-dead cores {overlap}")
        if set(event.cores) - base_cores:
            raise BadRequest(
                f"core_loss for unknown cores "
                f"{sorted(set(event.cores) - base_cores)}"
            )
        post_machine = _prune(base.machine, tuple(sorted(set(dead) | set(event.cores))), "core_loss")
        echo = event_to_dict(event)
    elif isinstance(event, CoreHotplug):
        missing = sorted(set(event.cores) - set(dead))
        if missing:
            raise BadRequest(f"core_hotplug for cores not in dead_cores: {missing}")
        post_machine = _prune(base.machine, tuple(sorted(set(dead) - set(event.cores))), "core_hotplug")
        echo = event_to_dict(event)
    elif isinstance(event, TopologyEdit):
        post_machine = event.machine
        echo = event_to_dict(event)
    else:  # pragma: no cover - parse_event is exhaustive
        raise BadRequest(f"unknown event kind {raw_event.get('kind')!r}")

    pre = MappingRequest(
        program=base.program,
        nest=base.nest,
        machine=pre_machine,
        knobs=base.knobs,
        program_key=base.program_key,
    )
    post = MappingRequest(
        program=base.program,
        nest=base.nest,
        machine=post_machine,
        knobs=post_knobs,
        deadline_ms=base.deadline_ms,
        no_cache=base.no_cache,
        debug_sleep_ms=base.debug_sleep_ms,
        program_key=base.program_key,
    )
    return RemapRequest(pre=pre, post=post, event=echo)
