"""Bounded admission queue and worker pool for the mapping service.

Admission control is the service's backpressure mechanism: at most
``queue_size`` requests wait for a worker at any moment, and a submit
against a full queue raises :class:`~repro.service.protocol.Overloaded`
immediately (the server turns that into HTTP 429 + ``Retry-After``)
instead of letting latency grow without bound.

The pool is deliberately simple: one :class:`queue.Queue`, ``workers``
daemon-free threads, one sentinel per worker on shutdown.  ``drain``
stops admissions and then waits for the queue *and* the in-flight set to
empty, which is what the SIGTERM handler needs for a clean
drain-then-exit.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.service.protocol import MappingRequest, Overloaded

_SENTINEL = object()


@dataclass
class Job:
    """One admitted request travelling from handler thread to worker.

    ``kind`` selects the worker-side flow: ``"map"`` (the default) runs
    the degradation check + pipeline; ``"remap"`` runs the incremental
    remap of ``remap`` (a :class:`~repro.service.protocol.RemapRequest`
    whose ``post`` is this job's ``request``).
    """

    request: MappingRequest
    request_id: str
    enqueued: float = field(default_factory=time.monotonic)
    done: threading.Event = field(default_factory=threading.Event)
    response: dict | None = None
    error: BaseException | None = None
    queue_wait_ms: float = 0.0
    kind: str = "map"
    remap: Any = None

    def finish(self, response: dict | None = None, error: BaseException | None = None) -> None:
        self.response = response
        self.error = error
        self.done.set()


class AdmissionQueue:
    """Fixed-capacity job queue drained by a fixed worker pool."""

    def __init__(
        self,
        handler: Callable[[Job], dict],
        queue_size: int = 64,
        workers: int = 2,
        name: str = "repro-service",
    ):
        if queue_size <= 0:
            raise ValueError(f"queue_size must be positive, got {queue_size}")
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.handler = handler
        self.queue_size = queue_size
        self.workers = workers
        self._queue: queue.Queue[Any] = queue.Queue(maxsize=queue_size)
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._in_flight = 0
        self._accepting = False
        self._idle = threading.Condition(self._lock)
        self.submitted = 0
        self.rejected = 0
        self._name = name

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        self._accepting = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"{self._name}-worker-{index}"
            )
            thread.start()
            self._threads.append(thread)

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, wait for queued + in-flight work to finish."""
        with self._lock:
            self._accepting = False
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._queue.unfinished_tasks or self._in_flight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(timeout=remaining)
        return True

    def stop(self, timeout: float | None = 30.0) -> bool:
        """Drain, then terminate the workers (idempotent)."""
        if not self._threads:
            with self._lock:
                self._accepting = False
            return True
        drained = self.drain(timeout)
        for _ in self._threads:
            self._queue.put(_SENTINEL)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        return drained

    # -- admission -------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Admit a job or raise :class:`Overloaded`/:class:`Unavailable`."""
        with self._lock:
            if not self._accepting:
                from repro.service.protocol import Unavailable

                raise Unavailable("service is draining")
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._lock:
                self.rejected += 1
            raise Overloaded(
                f"admission queue full ({self.queue_size} waiting)",
                retry_after=self.retry_after_hint(),
            ) from None
        with self._lock:
            self.submitted += 1

    def retry_after_hint(self, avg_job_s: float = 0.1) -> int:
        """Seconds until a queue slot plausibly frees up (>= 1)."""
        backlog = self._queue.qsize() + self._in_flight
        return max(1, min(30, round(backlog * avg_job_s / self.workers)))

    # -- introspection ---------------------------------------------------
    def depth(self) -> int:
        return self._queue.qsize()

    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    # -- worker loop -----------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                self._queue.task_done()
                return
            job: Job = item
            job.queue_wait_ms = (time.monotonic() - job.enqueued) * 1e3
            with self._lock:
                self._in_flight += 1
            try:
                job.finish(response=self.handler(job))
            except BaseException as error:  # noqa: BLE001 - ferried to the handler thread
                job.finish(error=error)
            finally:
                with self._idle:
                    self._in_flight -= 1
                    self._queue.task_done()
                    self._idle.notify_all()
