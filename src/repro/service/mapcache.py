"""Two-tier mapping cache: in-process LRU over an optional disk store.

Tier 1 is a bounded, thread-safe LRU dictionary; tier 2 reuses the
content-keyed fingerprinting of :mod:`repro.experiments.cache` — entries
live in ``mappings-<fp12>.json`` under the cache directory, where the
fingerprint covers every mapping-relevant source file.  Editing the
mapper therefore moves the service to a fresh (empty) file instead of
serving stale mappings, exactly like the experiment result cache.

Keys are the protocol's ``(nest digest, topology digest, knob tuple)``
triples; values are the engine's JSON-serializable response payloads.
A tier-1 miss that hits tier 2 is promoted into the LRU, so a warm
restart pays the disk read once per key.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict

from repro.experiments.cache import code_fingerprint, default_cache_dir
from repro.util.filelock import FileLock

#: JSON schema tag for the persistent tier's file payload.
STORE_FORMAT = 1


def _encode_key(key: tuple) -> str:
    return json.dumps(key, separators=(",", ":"))


class _DiskStore:
    """The persistent tier: one JSON file per code fingerprint.

    Same discipline as :class:`repro.pipeline.persist.PlanStore`:
    write-through, corrupt/foreign files read as empty, and — because
    the sharded service runs N worker processes over one cache
    directory — every flush is a locked read-merge-replace instead of a
    last-writer-wins ``os.replace``, and a miss re-checks the file's
    stat signature so entries persisted by sibling processes become
    visible without a restart.
    """

    def __init__(self, directory: str | None = None):
        self.directory = directory or default_cache_dir()
        self.fingerprint = code_fingerprint()
        self.path = os.path.join(
            self.directory, f"mappings-{self.fingerprint[:12]}.json"
        )
        self._disk_sig: tuple | None = None
        self._entries: dict[str, dict] = {}
        self._reload_if_changed()

    def _signature(self) -> tuple | None:
        try:
            st = os.stat(self.path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size, st.st_ino)

    def _read_disk(self) -> dict[str, dict]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return {}
        if (
            not isinstance(payload, dict)
            or payload.get("format") != STORE_FORMAT
            or payload.get("fingerprint") != self.fingerprint
        ):
            return {}
        entries = payload.get("mappings")
        return entries if isinstance(entries, dict) else {}

    def _reload_if_changed(self) -> None:
        sig = self._signature()
        if sig == self._disk_sig:
            return
        merged = self._read_disk()
        merged.update(self._entries)
        self._entries = merged
        self._disk_sig = sig

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, encoded: str) -> dict | None:
        value = self._entries.get(encoded)
        if value is None:
            self._reload_if_changed()
            value = self._entries.get(encoded)
        return value if isinstance(value, dict) else None

    def put(self, encoded: str, value: dict) -> None:
        if encoded in self._entries:
            return
        self._entries[encoded] = value
        self._flush()

    def _flush(self) -> None:
        os.makedirs(self.directory, exist_ok=True)
        with FileLock(self.path + ".lock"):
            merged = self._read_disk()
            merged.update(self._entries)
            self._entries = merged
            payload = {
                "format": STORE_FORMAT,
                "fingerprint": self.fingerprint,
                "mappings": merged,
            }
            tmp = f"{self.path}.{os.getpid()}.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self.path)
            self._disk_sig = self._signature()


class MappingCache:
    """The two tiers behind one ``get``/``put`` pair.

    ``get`` returns ``(value, tier)`` with tier ``"memory"`` or
    ``"disk"``, or ``None`` on a full miss.  Hit/miss counts per tier
    are kept under the same lock and surface in the service's
    ``/stats``.
    """

    def __init__(
        self,
        capacity: int = 512,
        directory: str | None = None,
        persistent: bool = False,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lru: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()
        self._disk = _DiskStore(directory) if persistent else None
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self.evictions = 0

    @property
    def persistent(self) -> bool:
        return self._disk is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def get(self, key: tuple) -> tuple[dict, str] | None:
        encoded = _encode_key(key)
        with self._lock:
            value = self._lru.get(encoded)
            if value is not None:
                self._lru.move_to_end(encoded)
                self.hits_memory += 1
                return value, "memory"
            if self._disk is not None:
                value = self._disk.get(encoded)
                if value is not None:
                    self.hits_disk += 1
                    self._admit(encoded, value)
                    return value, "disk"
            self.misses += 1
            return None

    def put(self, key: tuple, value: dict) -> None:
        encoded = _encode_key(key)
        with self._lock:
            self._admit(encoded, value)
            if self._disk is not None:
                self._disk.put(encoded, value)

    def _admit(self, encoded: str, value: dict) -> None:
        self._lru[encoded] = value
        self._lru.move_to_end(encoded)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._lru),
                "persistent": self._disk is not None,
                "disk_entries": len(self._disk) if self._disk else 0,
                "disk_path": self._disk.path if self._disk else None,
                "hits_memory": self.hits_memory,
                "hits_disk": self.hits_disk,
                "misses": self.misses,
                "evictions": self.evictions,
            }
