"""Reuse-distance profiles of per-core access streams.

The reuse distance of an access is the number of *distinct* cache lines
touched since the previous access to the same line (infinity for first
touches).  A line hits in a cache of capacity C (fully associative, LRU)
iff its reuse distance is below C — the classic stack-distance model — so
the profile predicts, machine-independently, how a plan's intra-core
order will perform at each capacity.  The paper's local scheduling
(Section 3.5.3) is precisely a reuse-distance-shortening pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.mapping.distribute import ExecutablePlan
from repro.sim.trace import MemoryLayout, build_traces


@dataclass(frozen=True)
class ReuseProfile:
    """Histogram of reuse distances for one core's stream."""

    core: int
    total_accesses: int
    first_touches: int
    histogram: tuple[tuple[int, int], ...]  # (bucket upper bound, count)

    def hits_under(self, capacity_lines: int) -> int:
        """Accesses with reuse distance < capacity (predicted LRU hits)."""
        hits = 0
        for bound, count in self.histogram:
            if bound <= capacity_lines:
                hits += count
        return hits

    def hit_ratio_under(self, capacity_lines: int) -> float:
        return self.hits_under(capacity_lines) / self.total_accesses if self.total_accesses else 0.0


def _distances(stream: list[int]) -> tuple[int, dict[int, int]]:
    """Exact reuse distances via a last-seen epoch + distinct-count scan.

    O(n * d) where d is the mean distance — fine for the bounded streams
    this library produces; a Bennett–Kruskal tree would be the scalable
    choice.
    """
    last_index: dict[int, int] = {}
    buckets: dict[int, int] = {}
    first_touches = 0
    for index, line in enumerate(stream):
        previous = last_index.get(line)
        if previous is None:
            first_touches += 1
        else:
            distinct = len(set(stream[previous + 1 : index]))
            buckets[distinct] = buckets.get(distinct, 0) + 1
        last_index[line] = index
    return first_touches, buckets


def reuse_distance_profile(
    plan: ExecutablePlan,
    core: int,
    line_size: int = 64,
    bucket_bounds: tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512, 1024, 1 << 30),
) -> ReuseProfile:
    """Reuse-distance histogram of one core's access stream.

    Rounds are concatenated (barriers do not flush caches).  Distances
    are bucketed at ``bucket_bounds`` (each bucket counts accesses with
    distance < bound and >= the previous bound).
    """
    if not 0 <= core < len(plan.rounds):
        raise SimulationError(f"no core {core} in plan")
    layout = MemoryLayout.for_nest(plan.nest, line_size)
    shift = line_size.bit_length() - 1
    traces = build_traces(plan, layout, shift)
    stream = [line for rnd in traces[core] for line in rnd]
    first_touches, raw = _distances(stream)

    histogram = []
    previous_bound = 0
    for bound in bucket_bounds:
        count = sum(c for d, c in raw.items() if previous_bound <= d < bound)
        histogram.append((bound, count))
        previous_bound = bound
    return ReuseProfile(
        core=core,
        total_accesses=len(stream),
        first_touches=first_touches,
        histogram=tuple(histogram),
    )
