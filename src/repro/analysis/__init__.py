"""Static analysis of mappings and plans.

Tools to *explain* the simulator's verdicts without running it: per-core
working sets, block replication factors across the cache tree, sharing
matrices, and reuse-distance profiles.  These are the quantities the
paper's Figure 3 reasons about ("destructive interactions", "data
replication across multiple on-chip caches", "access that data at
similar times").
"""

from repro.analysis.workingset import (
    PlanAnalysis,
    analyze_plan,
    replication_factor,
    sharing_matrix,
)
from repro.analysis.reuse import reuse_distance_profile

__all__ = [
    "PlanAnalysis",
    "analyze_plan",
    "replication_factor",
    "sharing_matrix",
    "reuse_distance_profile",
]
