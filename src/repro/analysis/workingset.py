"""Working-set and replication analysis of executable plans.

Given any :class:`~repro.mapping.distribute.ExecutablePlan` (TopologyAware
or baseline) and a data-block partition, compute:

* the distinct data blocks each core touches (its block working set);
* the **replication factor** of each block — how many cache components at
  a given tree level will hold copies of it (Figure 3(b)'s waste);
* the **sharing matrix** — for every pair of cores, how many blocks they
  both touch, split into affinity pairs (they share a cache) and
  non-affinity pairs (the paper's constructive vs destructive distinction).

These are static predictions; the simulator confirms them dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.tags import dot, ones
from repro.mapping.distribute import ExecutablePlan
from repro.util.tables import format_table


def _core_tags(plan: ExecutablePlan, partition: DataBlockPartition) -> list[int]:
    """Bitset of blocks each core touches."""
    nest = plan.nest
    nest.validate_access_bounds()
    if not nest.is_affine():
        # Indirect accesses: evaluate each reference concretely per point.
        concrete = [
            (
                offset_of,
                partition.blocks_of_array(name).start,
                partition.elements_per_block(name),
            )
            for name, offset_of, _ in nest.offset_evaluators()
        ]
        tags = []
        for core_rounds in plan.rounds:
            tag = 0
            for rnd in core_rounds:
                for point in rnd:
                    for offset_of, first, per_block in concrete:
                        tag |= 1 << (first + offset_of(point) // per_block)
            tags.append(tag)
        return tags
    resolved = []
    for access in nest.accesses:
        constant, coeffs = access.offset_form()
        first = partition.blocks_of_array(access.array.name).start
        per_block = partition.elements_per_block(access.array.name)
        resolved.append((constant, coeffs, first, per_block))
    tags = []
    for core_rounds in plan.rounds:
        tag = 0
        for rnd in core_rounds:
            for point in rnd:
                for constant, coeffs, first, per_block in resolved:
                    offset = constant
                    for c, x in zip(coeffs, point):
                        offset += c * x
                    tag |= 1 << (first + offset // per_block)
        tags.append(tag)
    return tags


def replication_factor(
    plan: ExecutablePlan, partition: DataBlockPartition, level: str
) -> float:
    """Mean number of ``level`` components holding each touched block.

    1.0 means every block lives under exactly one component of that level
    (no replication); Base distributions of mirrored kernels typically
    sit near 2.0 while TopologyAware returns to ~1.0.
    """
    tags = _core_tags(plan, partition)
    machine = plan.machine
    component_tags = []
    for node in machine.cache_nodes():
        if node.spec.level != level:
            continue
        tag = 0
        for core in node.cores_below():
            if core < len(tags):
                tag |= tags[core]
        component_tags.append(tag)
    touched = 0
    copies = 0
    all_blocks = 0
    for t in component_tags:
        all_blocks |= t
        copies += ones(t)
    touched = ones(all_blocks)
    return copies / touched if touched else 0.0


def sharing_matrix(
    plan: ExecutablePlan, partition: DataBlockPartition
) -> list[list[int]]:
    """``matrix[a][b]`` = number of blocks cores a and b both touch."""
    tags = _core_tags(plan, partition)
    n = len(tags)
    return [[dot(tags[a], tags[b]) for b in range(n)] for a in range(n)]


@dataclass(frozen=True)
class PlanAnalysis:
    """Summary statistics for one plan."""

    label: str
    core_block_counts: tuple[int, ...]
    replication: dict[str, float]
    affinity_sharing: int
    non_affinity_sharing: int

    @property
    def sharing_alignment(self) -> float:
        """Fraction of cross-core sharing that lands on affinity pairs.

        1.0 = every pair of cores that shares blocks also shares a cache
        (the paper's goal); low values mean destructive placement.
        """
        total = self.affinity_sharing + self.non_affinity_sharing
        return self.affinity_sharing / total if total else 1.0

    def table(self) -> str:
        rows = [
            ("cores (blocks each)", " ".join(str(c) for c in self.core_block_counts)),
        ]
        for level, factor in self.replication.items():
            rows.append((f"replication @ {level}", f"{factor:.2f}x"))
        rows.append(("sharing on affinity pairs", str(self.affinity_sharing)))
        rows.append(("sharing on non-affinity pairs", str(self.non_affinity_sharing)))
        rows.append(("sharing alignment", f"{100 * self.sharing_alignment:.0f}%"))
        return format_table(("metric", "value"), rows, title=f"plan analysis: {self.label}")


def analyze_plan(plan: ExecutablePlan, partition: DataBlockPartition) -> PlanAnalysis:
    """Full static analysis of a plan."""
    tags = _core_tags(plan, partition)
    machine = plan.machine
    n = len(tags)
    affinity = 0
    non_affinity = 0
    for a in range(n):
        for b in range(a + 1, n):
            shared = dot(tags[a], tags[b])
            if not shared:
                continue
            if machine.have_affinity(a, b):
                affinity += shared
            else:
                non_affinity += shared
    replication = {
        level: replication_factor(plan, partition, level)
        for level in machine.cache_levels()
    }
    return PlanAnalysis(
        label=plan.label,
        core_block_counts=tuple(ones(t) for t in tags),
        replication=replication,
        affinity_sharing=affinity,
        non_affinity_sharing=non_affinity,
    )
