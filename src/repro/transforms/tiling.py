"""Iteration-space tiling (blocking) — the other half of Base+.

Tiling reorders iterations tile by tile so the working set of a tile fits
in cache before the sweep moves on.  Because our baselines reorder
explicit iteration lists, :func:`tiled_order` sorts points by
(tile coordinates, intra-tile coordinates); legality is inherited from the
permutation check (tiling a legal loop order with rectangular tiles is
legal for the fully-permutable orders we apply it to — the paper's Base+
applies it the same way).

Tile-size selection follows the paper's empirical spirit: candidates are
scored by a working-set model (distinct cache lines a tile touches) and
the largest tile whose footprint fits the target cache is chosen;
experiments can instead sweep candidates through the simulator and pick
the fastest, exactly as the paper did.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import TransformError
from repro.ir.loops import LoopNest

DEFAULT_CANDIDATES = (4, 8, 16, 32, 64, 128)


def tiled_order(
    points: Sequence[tuple[int, ...]],
    tile_sizes: Sequence[int],
    perm: Sequence[int] | None = None,
) -> list[tuple[int, ...]]:
    """Reorder an iteration list in tiled (blocked) order.

    Points are sorted by tile coordinate first, then by intra-tile
    coordinate, both in the (optionally permuted) dimension order.
    """
    if not points:
        return []
    depth = len(points[0])
    if len(tile_sizes) != depth:
        raise TransformError(f"need {depth} tile sizes, got {len(tile_sizes)}")
    if any(t <= 0 for t in tile_sizes):
        raise TransformError(f"tile sizes must be positive: {tile_sizes}")
    order = tuple(perm) if perm is not None else tuple(range(depth))

    def key(point: tuple[int, ...]) -> tuple:
        tiles = tuple(point[k] // tile_sizes[k] for k in order)
        intra = tuple(point[k] for k in order)
        return tiles + intra

    return sorted(points, key=key)


def tile_footprint_bytes(nest: LoopNest, tile_sizes: Sequence[int]) -> int:
    """Working-set estimate of one tile, in bytes.

    For each reference, a tile of extents ``T`` maps to a data region of
    extent ``sum_k |coeff(dim_k)| * (T_k - 1) + 1`` per array dimension;
    the product over array dimensions (clipped to the array bounds) times
    the element size approximates the tile's footprint for that reference.
    Distinct references to the same array overlap, so this over-estimates
    — which only biases toward smaller, safer tiles.
    """
    if not nest.is_affine():
        raise TransformError(
            f"nest {nest.name!r} has indirect references; the tile "
            "footprint model needs affine subscripts"
        )
    if len(tile_sizes) != len(nest.dims):
        raise TransformError(
            f"need {len(nest.dims)} tile sizes, got {len(tile_sizes)}"
        )
    total = 0
    for access in nest.accesses:
        region = 1
        for dim_index, subscript in enumerate(access.subscripts):
            extent = 1
            for k, dim in enumerate(nest.dims):
                extent += abs(subscript.coeff(dim)) * (tile_sizes[k] - 1)
            extent = min(extent, access.array.extents[dim_index])
            region *= extent
        total += region * access.array.element_size
    return total


def select_tile_sizes(
    nest: LoopNest,
    cache_bytes: int,
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
) -> tuple[int, ...]:
    """Largest square tile whose modeled footprint fits ``cache_bytes``.

    Returns one size per loop dimension.  Falls back to the smallest
    candidate when nothing fits (tiny caches) — tiling never makes the
    iteration *set* wrong, only less effective.
    """
    if cache_bytes <= 0:
        raise TransformError("cache size must be positive")
    depth = len(nest.dims)
    best = (min(candidates),) * depth
    for size in sorted(candidates):
        tile = (size,) * depth
        if tile_footprint_bytes(nest, tile) <= cache_bytes:
            best = tile
        else:
            break
    return best
