"""Legality machinery for loop reordering.

Classical theory: a loop permutation is legal iff every dependence
distance vector remains lexicographically positive after permuting its
components.  Distance vectors come from the exact polyhedral dependence
pairs of :mod:`repro.ir.dependences` (uniform dependences give a small
constant set; non-uniform nests contribute their sampled distances, which
is conservative enough for the Base+ baseline: an illegal permutation is
never reported legal because legality is judged on *observed* distances of
the very iteration space being transformed, which is exhaustive for the
bounded spaces this library works on).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import TransformError
from repro.ir.dependences import iteration_dependences
from repro.ir.loops import LoopNest
from repro.util.mathutil import sign


def distance_vectors(nest: LoopNest, limit: int | None = 20_000) -> set[tuple[int, ...]]:
    """Distinct dependence distance vectors of the nest (exact, enumerated)."""
    return {pair.distance for pair in iteration_dependences(nest, limit=limit)}


def direction_vectors(nest: LoopNest, limit: int | None = 20_000) -> set[tuple[int, ...]]:
    """Distinct direction vectors: the componentwise signs of distances."""
    return {tuple(sign(x) for x in d) for d in distance_vectors(nest, limit)}


def _lex_positive(vector: Sequence[int]) -> bool:
    for x in vector:
        if x > 0:
            return True
        if x < 0:
            return False
    return False


def is_legal_permutation(
    perm: Sequence[int], distances: Iterable[tuple[int, ...]]
) -> bool:
    """True iff every distance vector stays lexicographically positive.

    ``perm[k]`` gives the original dimension placed at position ``k``.
    An empty distance set (fully parallel nest) makes every permutation
    legal.
    """
    perm = tuple(perm)
    for distance in distances:
        if len(distance) != len(perm):
            raise TransformError(
                f"distance vector {distance} does not match permutation {perm}"
            )
        if not _lex_positive([distance[p] for p in perm]):
            return False
    return True
