"""Intra-core locality transformations (the paper's Base+ baseline).

Base+ is "the state-of-the-art in data locality enhancement": per core it
applies loop permutation (linear/unimodular transformations) and iteration
space tiling, with the tile size chosen empirically.  Because every scheme
in the evaluation keeps the per-core iteration *sets* fixed and only
reorders them, these transforms are exposed as iteration-order rewriters
over explicit iteration lists, plus the classic legality machinery
(distance/direction vectors, lexicographic positivity).
"""

from repro.transforms.unimodular import (
    direction_vectors,
    distance_vectors,
    is_legal_permutation,
)
from repro.transforms.permute import best_locality_permutation, permuted_order
from repro.transforms.tiling import select_tile_sizes, tiled_order

__all__ = [
    "direction_vectors",
    "distance_vectors",
    "is_legal_permutation",
    "best_locality_permutation",
    "permuted_order",
    "select_tile_sizes",
    "tiled_order",
]
