"""Locality-driven loop permutation (half of Base+).

The cost model is the classic one: the innermost loop should be the
dimension with the smallest combined memory stride across references
(unit-stride spatial locality first, temporal reuse — dimension absent
from a subscript — best of all).  Among all *legal* permutations we pick
the one minimizing a stride-weighted cost with the innermost position
weighted heaviest.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from repro.errors import TransformError
from repro.ir.loops import LoopNest
from repro.transforms.unimodular import distance_vectors, is_legal_permutation


def dimension_stride(nest: LoopNest, dim: str) -> int:
    """Summed memory stride (in elements) a unit step of ``dim`` causes.

    For each reference, stepping ``dim`` by one moves the accessed element
    by ``sum_k coeff_k(dim) * array_stride_k`` elements; zero means
    temporal reuse in that reference.
    """
    if not nest.is_affine():
        raise TransformError(
            f"nest {nest.name!r} has indirect references; stride-model "
            "permutation needs affine subscripts"
        )
    total = 0
    for access in nest.accesses:
        move = 0
        strides = access.array._strides  # row-major element strides
        for subscript, stride in zip(access.subscripts, strides):
            move += subscript.coeff(dim) * stride
        total += abs(move)
    return total


def permutation_cost(nest: LoopNest, perm: Sequence[int]) -> float:
    """Stride-weighted cost: inner positions dominate geometrically.

    The innermost position's stride counts fully; each step outward is
    attenuated 4x (a loop one level out advances its subscripts once per
    full inner sweep).
    """
    depth = len(nest.dims)
    return sum(
        dimension_stride(nest, nest.dims[original]) * (4.0 ** -(depth - 1 - pos))
        for pos, original in enumerate(perm)
    )


def best_locality_permutation(nest: LoopNest) -> tuple[int, ...]:
    """Legal permutation minimizing the stride cost (identity on ties)."""
    depth = len(nest.dims)
    if depth == 1:
        return (0,)
    distances = distance_vectors(nest) if not nest.parallel else set()
    best: tuple[int, ...] | None = None
    best_cost = float("inf")
    for perm in itertools.permutations(range(depth)):
        if distances and not is_legal_permutation(perm, distances):
            continue
        cost = permutation_cost(nest, perm)
        if cost < best_cost or (cost == best_cost and perm == tuple(range(depth))):
            best_cost = cost
            best = perm
    if best is None:
        # No legal reordering at all: keep the original order.
        return tuple(range(depth))
    return best


def permuted_order(
    points: Sequence[tuple[int, ...]], perm: Sequence[int]
) -> list[tuple[int, ...]]:
    """Reorder an explicit iteration list as the permuted nest would visit it."""
    perm = tuple(perm)
    if points and len(perm) != len(points[0]):
        raise TransformError(
            f"permutation of length {len(perm)} on {len(points[0])}-d points"
        )
    return sorted(points, key=lambda p: tuple(p[k] for k in perm))
