"""Cache topology aware computation mapping for multicores.

A from-scratch reproduction of Kandemir et al., PLDI 2010: a compiler
pass that distributes the iterations of a parallel loop across cores —
and schedules each core's share — driven by the target machine's on-chip
cache topology.

Typical use::

    from repro import compile_source, TopologyAwareMapper, execute_plan
    from repro.topology import dunnington

    program = compile_source(source_text)
    machine = dunnington().with_scaled_caches(1/32)
    mapper = TopologyAwareMapper(machine, local_scheduling=True)
    plan = mapper.map_nest(program, program.nests[0]).plan()
    result = execute_plan(plan)

Subpackages: :mod:`repro.poly` (polyhedral substrate), :mod:`repro.lang`
(frontend), :mod:`repro.ir` (loop-nest IR + dependence analysis),
:mod:`repro.topology` (cache trees and machines), :mod:`repro.blocks`
(data blocks / tags / groups), :mod:`repro.mapping` (the contribution +
baselines), :mod:`repro.transforms` (Base+ loop transforms),
:mod:`repro.sim` (multicore cache simulator), :mod:`repro.runtime`
(execution + codegen glue), :mod:`repro.workloads` (the twelve
applications), :mod:`repro.experiments` (tables and figures).
"""

from repro.errors import ReproError
from repro.lang import compile_source
from repro.mapping import TopologyAwareMapper, base_plan, base_plus_plan, local_plan
from repro.runtime import execute_plan

#: The single source of truth for the library version.  ``repro
#: --version``, the service's ``/version`` endpoint, and the ``Server:``
#: header all read this; ``pyproject.toml`` mirrors it (asserted by
#: ``tests/test_version.py``).
__version__ = "0.2.0"

__all__ = [
    "ReproError",
    "compile_source",
    "TopologyAwareMapper",
    "base_plan",
    "base_plus_plan",
    "local_plan",
    "execute_plan",
    "__version__",
]
