"""JSON (de)serialization of plans, programs and results.

A compiled mapping is an artifact worth persisting: build farms map once
and run many times; experiment pipelines archive what they executed.
``plan_to_json``/``plan_from_json`` round-trip an
:class:`~repro.mapping.distribute.ExecutablePlan` given the program it
belongs to (iteration tuples are data; the nest and machine are
reconstructed from their own sources and validated against the recorded
fingerprints).  ``result_to_dict`` flattens a
:class:`~repro.sim.stats.SimResult` for logging.

``program_to_dict``/``program_from_dict`` round-trip a whole
:class:`~repro.ir.loops.Program` — arrays, params, and each nest's
iteration space and affine accesses.  This is the wire format of the
mapping service (:mod:`repro.service`): clients that already lowered
their source (or never had :mod:`repro.lang` text to begin with) submit
the IR itself, and :func:`program_digest` gives both sides a canonical
content key for caching.
"""

from __future__ import annotations

import hashlib
import json

from repro.errors import IRError, SimulationError
from repro.ir.accesses import ArrayAccess, IndirectAccess, IndirectExpr
from repro.ir.arrays import Array
from repro.ir.loops import LoopNest, Program
from repro.mapping.distribute import ExecutablePlan
from repro.poly.affine import AffineExpr
from repro.poly.constraints import Constraint
from repro.poly.intset import IntSet
from repro.sim.stats import SimResult
from repro.topology.tree import Machine

FORMAT_VERSION = 1

#: Format tag for serialized programs (independent of the plan format).
PROGRAM_FORMAT_VERSION = 1


def _tree_shape(node) -> str:
    if node.kind == "core":
        return "c"
    return "(" + ",".join(_tree_shape(child) for child in node.children) + ")"


def _machine_fingerprint(machine: Machine) -> dict:
    # Pruned/asymmetric trees (e.g. ``Machine.without_cores``) have no
    # per-level degree vector; a bracketed shape signature keeps the
    # fingerprint discriminating without changing the uniform format.
    degrees: object
    if machine.is_level_uniform():
        degrees = list(machine.clustering_degrees())
    else:
        degrees = _tree_shape(machine.root)
    return {
        "name": machine.name,
        "cores": machine.num_cores,
        "levels": list(machine.cache_levels()),
        "degrees": degrees,
        "total_cache_bytes": machine.total_cache_bytes(),
    }


#: Format tag for serialized machines (``repro topo ingest --json``).
MACHINE_FORMAT_VERSION = 1


def machine_to_dict(machine: Machine) -> dict:
    """The full machine tree as a plain JSON-serializable dict.

    Unlike :func:`_machine_fingerprint` (a summary for validation) this
    is lossless: :func:`machine_from_dict` rebuilds an equal tree, so an
    ingested topology can be archived next to the plans mapped on it.
    """

    def node(n) -> dict:
        if n.kind == "core":
            return {"kind": "core", "core_id": n.core_id}
        out: dict = {"kind": n.kind}
        if n.kind == "cache":
            out["spec"] = {
                "level": n.spec.level,
                "size_bytes": n.spec.size_bytes,
                "associativity": n.spec.associativity,
                "line_size": n.spec.line_size,
                "latency": n.spec.latency,
            }
        out["children"] = [node(child) for child in n.children]
        return out

    return {
        "format": MACHINE_FORMAT_VERSION,
        "name": machine.name,
        "clock_ghz": machine.clock_ghz,
        "memory_latency": machine.memory_latency,
        "sockets": machine.sockets,
        "root": node(machine.root),
    }


def machine_from_dict(payload: dict) -> Machine:
    """Rebuild a :class:`Machine` serialized by :func:`machine_to_dict`."""
    from repro.topology.cache import CacheSpec
    from repro.topology.tree import TopologyNode

    if not isinstance(payload, dict) or "root" not in payload:
        raise SimulationError("machine payload: missing 'root'")
    version = payload.get("format", MACHINE_FORMAT_VERSION)
    if version != MACHINE_FORMAT_VERSION:
        raise SimulationError(f"machine payload: unsupported format {version!r}")

    def node(raw: dict) -> TopologyNode:
        kind = raw.get("kind")
        if kind == "core":
            return TopologyNode.core(int(raw["core_id"]))
        children = [node(child) for child in raw.get("children", ())]
        if kind == "cache":
            spec = raw.get("spec") or {}
            return TopologyNode.cache(
                CacheSpec(
                    level=str(spec["level"]),
                    size_bytes=int(spec["size_bytes"]),
                    associativity=int(spec["associativity"]),
                    line_size=int(spec["line_size"]),
                    latency=int(spec["latency"]),
                ),
                children,
            )
        if kind == "memory":
            return TopologyNode.memory(children)
        raise SimulationError(f"machine payload: unknown node kind {kind!r}")

    try:
        return Machine(
            name=str(payload.get("name", "machine")),
            clock_ghz=float(payload.get("clock_ghz", 1.0)),
            memory_latency=int(payload.get("memory_latency", 1)),
            root=node(payload["root"]),
            sockets=int(payload.get("sockets", 1)),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SimulationError(f"machine payload: {error}") from None


def plan_to_dict(plan: ExecutablePlan) -> dict:
    """The plan as a plain JSON-serializable dict (rounds of iteration
    tuples + fingerprints); :func:`plan_to_json` is its dumped form."""
    return {
        "format": FORMAT_VERSION,
        "label": plan.label,
        "nest": plan.nest.name,
        "dims": list(plan.nest.dims),
        "machine": _machine_fingerprint(plan.machine),
        "rounds": [
            [[list(point) for point in rnd] for rnd in core_rounds]
            for core_rounds in plan.rounds
        ],
    }


def plan_to_json(plan: ExecutablePlan) -> str:
    """Serialize a plan (rounds of iteration tuples + fingerprints)."""
    return json.dumps(plan_to_dict(plan))


def plan_from_json(
    text: str, program: Program, machine: Machine
) -> ExecutablePlan:
    """Reconstruct a plan against a program and machine.

    The recorded nest name and machine fingerprint must match — a plan
    computed for one topology must not silently execute against another.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise SimulationError(f"malformed plan JSON: {error}") from None
    if payload.get("format") != FORMAT_VERSION:
        raise SimulationError(
            f"unsupported plan format {payload.get('format')!r}"
        )
    nest = program.nest(payload["nest"])
    if list(nest.dims) != payload["dims"]:
        raise SimulationError(
            f"nest {nest.name!r} dims {nest.dims} do not match recorded "
            f"{payload['dims']}"
        )
    recorded = payload["machine"]
    actual = _machine_fingerprint(machine)
    for key in ("cores", "levels", "degrees"):
        if recorded[key] != actual[key]:
            raise SimulationError(
                f"machine mismatch on {key}: plan was built for "
                f"{recorded[key]}, target has {actual[key]}"
            )
    rounds = tuple(
        tuple(tuple(tuple(point) for point in rnd) for rnd in core_rounds)
        for core_rounds in payload["rounds"]
    )
    plan = ExecutablePlan(machine, nest, rounds, payload["label"])
    plan.verify_complete()
    return plan


def _expr_to_dict(expr: AffineExpr) -> dict:
    return {"coeffs": dict(expr.coeffs), "constant": expr.constant}


def _expr_from_dict(raw: dict) -> AffineExpr:
    coeffs = raw.get("coeffs", {})
    if not isinstance(coeffs, dict):
        raise IRError("affine expression coeffs must be an object")
    return AffineExpr(
        {str(name): int(coeff) for name, coeff in coeffs.items()},
        int(raw.get("constant", 0)),
    )


def _subscript_to_dict(subscript) -> dict:
    # Indirect subscripts get an explicit "kind" tag; affine ones keep
    # the historical untagged form so affine programs serialize (and
    # digest) byte-identically to the pre-indirect format.
    if isinstance(subscript, IndirectExpr):
        return {
            "kind": "indirect",
            "array": subscript.array.name,
            "subscripts": [_expr_to_dict(s) for s in subscript.subscripts],
        }
    return _expr_to_dict(subscript)


def _access_to_dict(access) -> dict:
    out = {
        "array": access.array.name,
        "is_write": access.is_write,
        "subscripts": [_subscript_to_dict(s) for s in access.subscripts],
    }
    if isinstance(access, IndirectAccess):
        out["kind"] = "indirect"
    return out


def _nest_to_dict(nest: LoopNest) -> dict:
    return {
        "name": nest.name,
        "dims": list(nest.dims),
        "parallel": nest.parallel,
        "constraints": [
            {"kind": con.kind, **_expr_to_dict(con.expr)}
            for con in nest.space.constraints
        ],
        "accesses": [_access_to_dict(access) for access in nest.accesses],
    }


def program_to_dict(program: Program) -> dict:
    """The program as a plain JSON-serializable dict (the service wire
    format; see :func:`program_from_dict` for the inverse)."""
    return {
        "format": PROGRAM_FORMAT_VERSION,
        "name": program.name,
        "params": dict(program.params),
        "arrays": [
            {
                "name": array.name,
                "extents": list(array.extents),
                "element_size": array.element_size,
                # Index-array contents are part of the program for
                # indirect accesses; omitted entirely when absent so the
                # affine wire format is unchanged.
                **({"data": list(array.data)} if array.data is not None else {}),
            }
            for array in program.arrays.values()
        ],
        "nests": [_nest_to_dict(nest) for nest in program.nests],
    }


def program_to_json(program: Program) -> str:
    """Serialize a whole program (arrays, params, nests, accesses)."""
    return json.dumps(program_to_dict(program))


def program_from_dict(payload: dict) -> Program:
    """Reconstruct a :class:`~repro.ir.loops.Program` from its dict form.

    Validation is the IR's own: reconstructed accesses and nests go
    through the same constructors as frontend-lowered ones, so a payload
    that decodes successfully is a well-formed program (consistent array
    declarations, in-dims subscripts, and so on).
    """
    if not isinstance(payload, dict):
        raise IRError("serialized program must be a JSON object")
    if payload.get("format") != PROGRAM_FORMAT_VERSION:
        raise IRError(
            f"unsupported program format {payload.get('format')!r}"
        )
    try:
        arrays = {
            raw["name"]: Array(
                str(raw["name"]),
                tuple(int(e) for e in raw["extents"]),
                int(raw.get("element_size", 8)),
                data=(
                    tuple(int(v) for v in raw["data"])
                    if raw.get("data") is not None
                    else None
                ),
            )
            for raw in payload["arrays"]
        }
        nests = []
        for raw_nest in payload["nests"]:
            dims = tuple(str(d) for d in raw_nest["dims"])
            constraints = [
                Constraint(_expr_from_dict(raw), str(raw.get("kind", Constraint.GE)))
                for raw in raw_nest["constraints"]
            ]
            space = IntSet(dims, constraints)
            accesses = []
            for raw_access in raw_nest["accesses"]:
                name = raw_access["array"]
                if name not in arrays:
                    raise IRError(f"access references undeclared array {name!r}")
                subscripts = []
                for raw_sub in raw_access["subscripts"]:
                    if raw_sub.get("kind") == "indirect":
                        index_name = raw_sub["array"]
                        if index_name not in arrays:
                            raise IRError(
                                f"indirect subscript references undeclared "
                                f"array {index_name!r}"
                            )
                        subscripts.append(
                            IndirectExpr(
                                arrays[index_name],
                                [_expr_from_dict(s) for s in raw_sub["subscripts"]],
                            )
                        )
                    else:
                        subscripts.append(_expr_from_dict(raw_sub))
                cls = (
                    IndirectAccess
                    if raw_access.get("kind") == "indirect"
                    else ArrayAccess
                )
                accesses.append(
                    cls(
                        arrays[name],
                        dims,
                        subscripts,
                        is_write=bool(raw_access.get("is_write", False)),
                    )
                )
            nests.append(
                LoopNest(
                    str(raw_nest["name"]),
                    space,
                    accesses,
                    parallel=bool(raw_nest.get("parallel", True)),
                )
            )
        params = {
            str(name): int(value)
            for name, value in payload.get("params", {}).items()
        }
        return Program(str(payload["name"]), list(arrays.values()), nests, params)
    except (KeyError, TypeError, ValueError) as error:
        raise IRError(f"malformed serialized program: {error}") from None


def program_from_json(text: str) -> Program:
    """Inverse of :func:`program_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise IRError(f"malformed program JSON: {error}") from None
    return program_from_dict(payload)


def program_digest(program: Program) -> str:
    """Canonical content digest of a program (sorted-key JSON, SHA-256).

    Two programs digest equal iff their serialized forms are identical;
    the service keys its mapping cache on (this, topology digest, knobs).
    """
    canonical = json.dumps(
        program_to_dict(program), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def result_to_dict(result: SimResult) -> dict:
    """Flatten a simulation result for logs/JSON."""
    return {
        "label": result.label,
        "machine": result.machine_name,
        "cycles": result.cycles,
        "total_accesses": result.total_accesses,
        "memory_accesses": result.memory_accesses,
        "barriers": result.barriers,
        "levels": {
            stats.level: {"hits": stats.hits, "misses": stats.misses}
            for stats in result.levels
        },
    }
