"""JSON (de)serialization of plans and results.

A compiled mapping is an artifact worth persisting: build farms map once
and run many times; experiment pipelines archive what they executed.
``plan_to_json``/``plan_from_json`` round-trip an
:class:`~repro.mapping.distribute.ExecutablePlan` given the program it
belongs to (iteration tuples are data; the nest and machine are
reconstructed from their own sources and validated against the recorded
fingerprints).  ``result_to_dict`` flattens a
:class:`~repro.sim.stats.SimResult` for logging.
"""

from __future__ import annotations

import json

from repro.errors import SimulationError
from repro.ir.loops import Program
from repro.mapping.distribute import ExecutablePlan
from repro.sim.stats import SimResult
from repro.topology.tree import Machine

FORMAT_VERSION = 1


def _machine_fingerprint(machine: Machine) -> dict:
    return {
        "name": machine.name,
        "cores": machine.num_cores,
        "levels": list(machine.cache_levels()),
        "degrees": list(machine.clustering_degrees()),
        "total_cache_bytes": machine.total_cache_bytes(),
    }


def plan_to_json(plan: ExecutablePlan) -> str:
    """Serialize a plan (rounds of iteration tuples + fingerprints)."""
    payload = {
        "format": FORMAT_VERSION,
        "label": plan.label,
        "nest": plan.nest.name,
        "dims": list(plan.nest.dims),
        "machine": _machine_fingerprint(plan.machine),
        "rounds": [
            [[list(point) for point in rnd] for rnd in core_rounds]
            for core_rounds in plan.rounds
        ],
    }
    return json.dumps(payload)


def plan_from_json(
    text: str, program: Program, machine: Machine
) -> ExecutablePlan:
    """Reconstruct a plan against a program and machine.

    The recorded nest name and machine fingerprint must match — a plan
    computed for one topology must not silently execute against another.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise SimulationError(f"malformed plan JSON: {error}") from None
    if payload.get("format") != FORMAT_VERSION:
        raise SimulationError(
            f"unsupported plan format {payload.get('format')!r}"
        )
    nest = program.nest(payload["nest"])
    if list(nest.dims) != payload["dims"]:
        raise SimulationError(
            f"nest {nest.name!r} dims {nest.dims} do not match recorded "
            f"{payload['dims']}"
        )
    recorded = payload["machine"]
    actual = _machine_fingerprint(machine)
    for key in ("cores", "levels", "degrees"):
        if recorded[key] != actual[key]:
            raise SimulationError(
                f"machine mismatch on {key}: plan was built for "
                f"{recorded[key]}, target has {actual[key]}"
            )
    rounds = tuple(
        tuple(tuple(tuple(point) for point in rnd) for rnd in core_rounds)
        for core_rounds in payload["rounds"]
    )
    plan = ExecutablePlan(machine, nest, rounds, payload["label"])
    plan.verify_complete()
    return plan


def result_to_dict(result: SimResult) -> dict:
    """Flatten a simulation result for logs/JSON."""
    return {
        "label": result.label,
        "machine": result.machine_name,
        "cycles": result.cycles,
        "total_accesses": result.total_accesses,
        "memory_accesses": result.memory_accesses,
        "barriers": result.barriers,
        "levels": {
            stats.level: {"hits": stats.hits, "misses": stats.misses}
            for stats in result.levels
        },
    }
