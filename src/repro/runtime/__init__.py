"""Execution glue: plans -> traces -> simulated runs, and per-core codegen.

:func:`~repro.runtime.executor.execute_plan` is the one-call path from an
:class:`~repro.mapping.distribute.ExecutablePlan` to a simulated
:class:`~repro.sim.stats.SimResult`;
:mod:`repro.runtime.codeemit` emits the per-core enumeration code the
paper's backend would hand to Phoenix (Section 3.4's "generate code for
each core").
"""

from repro.runtime.executor import execute_plan, execute_program
from repro.runtime.codeemit import emit_core_sources, emit_plan_module
from repro.sim.trace import MemoryLayout

__all__ = [
    "execute_plan",
    "execute_program",
    "emit_core_sources",
    "emit_plan_module",
    "MemoryLayout",
]
