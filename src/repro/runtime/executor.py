"""One-call plan execution on the simulator."""

from __future__ import annotations

from collections.abc import Sequence

from repro.mapping.distribute import ExecutablePlan
from repro.sim.engine import SimConfig, simulate_plan
from repro.sim.hierarchy import MachineSim
from repro.sim.stats import SimResult
from repro.topology.tree import Machine


def execute_plan(
    plan: ExecutablePlan,
    machine: Machine | None = None,
    config: SimConfig | None = None,
    verify: bool = False,
) -> SimResult:
    """Simulate ``plan`` (optionally on a different target machine).

    ``verify=True`` additionally checks plan completeness (every iteration
    exactly once) and simulator conservation invariants — the slow but
    paranoid mode used by tests.
    """
    if verify:
        plan.verify_complete()
    result = simulate_plan(plan, machine=machine, config=config)
    if verify:
        result.verify_conservation()
    return result


def execute_program(
    plans: Sequence[ExecutablePlan],
    machine: Machine | None = None,
    config: SimConfig | None = None,
    warm_caches: bool = True,
) -> list[SimResult]:
    """Run a multi-nest program: the plans execute back to back.

    With ``warm_caches`` (the default) all plans share one simulated
    machine, so a later nest can hit on data a former one brought
    on-chip — the behaviour a real program has.  Per-plan statistics are
    still separated (component counters are reset between plans).
    """
    if not plans:
        return []
    target = machine or plans[0].machine
    shared = MachineSim(target) if warm_caches else None
    results: list[SimResult] = []
    for plan in plans:
        if shared is not None:
            shared.reset_stats()
            result = simulate_plan(plan, machine=target, config=config, machine_sim=shared)
        else:
            result = simulate_plan(plan, machine=target, config=config)
        results.append(result)
    return results
