"""Workload registry — our Table 2.

Each :class:`Workload` couples one application's kernel source with its
metadata (suite, sequential/parallel origin, description) and lazily
compiles it through the full frontend.  The paper's Table 2 lists the
application, its suite, whether it arrived sequential or parallel, and
its data set size; :func:`application_table` renders the same columns for
our kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import WorkloadError
from repro.ir.loops import LoopNest, Program
from repro.lang import compile_source
from repro.workloads import kernels


@dataclass(frozen=True)
class Workload:
    """One application of the evaluation suite."""

    name: str
    suite: str
    kind: str  # 'parallel' or 'sequential' (origin, per Table 2)
    description: str
    source: str
    num_blocks: int

    def program(self) -> Program:
        return _compile(self.name, self.source)

    def nest(self) -> LoopNest:
        return self.program().nests[0]

    def data_bytes(self) -> int:
        return self.program().total_data_bytes()

    def block_size(self) -> int:
        """Default tagging block size: data size over the block budget."""
        size = self.data_bytes() // self.num_blocks
        return max(64, (size // 64) * 64)


@lru_cache(maxsize=None)
def _compile(name: str, source: str) -> Program:
    return compile_source(source, name=name)


def _build() -> dict[str, Workload]:
    entries = [
        ("applu", "SpecOMP", "parallel", "SSOR solver, 5-point stencil sweep", kernels.applu),
        ("galgel", "SpecOMP", "parallel", "fluid dynamics, oscillatory instability (mirrored modes)", kernels.galgel),
        ("equake", "SpecOMP", "parallel", "seismic wave propagation, long-reach symmetric band", kernels.equake),
        ("cg", "NAS", "parallel", "conjugate gradient, banded sparse matrix-vector", kernels.cg),
        ("sp", "NAS", "parallel", "scalar penta-diagonal solver, wide vertical band", kernels.sp),
        ("bodytrack", "Parsec", "parallel", "body tracking, flipped-frame differencing", kernels.bodytrack),
        ("facesim", "Parsec", "parallel", "face simulation, symmetric mesh operator", kernels.facesim),
        ("freqmine", "Parsec", "parallel", "frequent itemset mining, folded transaction scan", kernels.freqmine),
        ("namd", "Spec2006", "sequential", "molecular dynamics, symmetric pair forces", kernels.namd),
        ("povray", "Spec2006", "sequential", "ray tracing, diagonal/mirrored buffer gathers", kernels.povray),
        ("mesa", "local", "sequential", "3-D graphics, texture swizzle", kernels.mesa),
        ("h264", "local", "sequential", "video encoding, motion-search window", kernels.h264),
    ]
    table: dict[str, Workload] = {}
    for name, suite, kind, description, builder in entries:
        source, num_blocks = builder()
        table[name] = Workload(name, suite, kind, description, source, num_blocks)
    return table


WORKLOADS: dict[str, Workload] = _build()


def workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None


def all_workloads() -> list[Workload]:
    return list(WORKLOADS.values())


def application_table() -> str:
    """Render our Table 2 (name, suite, origin, data size, iterations)."""
    from repro.util.tables import format_table

    rows = []
    for w in all_workloads():
        nest = w.nest()
        rows.append(
            (
                w.name,
                w.suite,
                w.kind,
                f"{w.data_bytes() / 1024:.0f}KB",
                nest.iteration_count(),
                len(nest.accesses),
                w.description,
            )
        )
    return format_table(
        ["application", "suite", "origin", "data", "iterations", "refs", "description"],
        rows,
        title="Table 2: applications (scaled kernels; see DESIGN.md substitutions)",
    )
