"""Workload registry — our Table 2, plus the irregular suite.

Each :class:`Workload` couples one application's kernel source with its
metadata (suite, sequential/parallel origin, description) and lazily
compiles it through the full frontend.  The paper's Table 2 lists the
application, its suite, whether it arrived sequential or parallel, and
its data set size; :func:`application_table` renders the same columns for
our kernels.

Two workload populations live here:

* the twelve **paper applications** (:func:`paper_workloads`) — affine
  kernels mirroring Table 2; the figure experiments run exactly these;
* the **irregular suite** (suite ``"irregular"``) — kernels with
  data-dependent subscripts through recorded index arrays.  Affine
  analysis declines them, so they map through the trace-based tagging
  fallback (:mod:`repro.blocks.analysis`).  Their index arrays are part
  of the workload (``index_data``) and are deterministic, so mapping
  them is as reproducible as the affine twelve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import UnknownWorkloadError, WorkloadError
from repro.ir.loops import LoopNest, Program
from repro.lang import compile_source
from repro.workloads import kernels

#: Suite name of the trace-tagged kernels (everything else is affine).
IRREGULAR_SUITE = "irregular"


@dataclass(frozen=True)
class Workload:
    """One application of the evaluation suite."""

    name: str
    suite: str
    kind: str  # 'parallel' or 'sequential' (origin, per Table 2)
    description: str
    source: str
    num_blocks: int
    #: Recorded index-array contents, as hashable (name, values) pairs;
    #: empty for affine kernels.
    index_data: tuple[tuple[str, tuple[int, ...]], ...] = field(default=())

    def program(self) -> Program:
        return _compile(self.name, self.source, self.index_data)

    def nest(self) -> LoopNest:
        program = self.program()
        if len(program.nests) != 1:
            raise WorkloadError(
                f"workload {self.name!r} compiles to {len(program.nests)} "
                "nests; pick one explicitly via .program().nest(name)"
            )
        return program.nests[0]

    def data_bytes(self) -> int:
        return self.program().total_data_bytes()

    def block_size(self) -> int:
        """Default tagging block size: data size over the block budget."""
        size = self.data_bytes() // self.num_blocks
        return max(64, (size // 64) * 64)


@lru_cache(maxsize=None)
def _compile(
    name: str, source: str, index_data: tuple[tuple[str, tuple[int, ...]], ...]
) -> Program:
    if index_data:
        return compile_source(
            source, name=name, index_data={k: list(v) for k, v in index_data}
        )
    return compile_source(source, name=name)


def _build() -> dict[str, Workload]:
    entries = [
        ("applu", "SpecOMP", "parallel", "SSOR solver, 5-point stencil sweep", kernels.applu),
        ("galgel", "SpecOMP", "parallel", "fluid dynamics, oscillatory instability (mirrored modes)", kernels.galgel),
        ("equake", "SpecOMP", "parallel", "seismic wave propagation, long-reach symmetric band", kernels.equake),
        ("cg", "NAS", "parallel", "conjugate gradient, banded sparse matrix-vector", kernels.cg),
        ("sp", "NAS", "parallel", "scalar penta-diagonal solver, wide vertical band", kernels.sp),
        ("bodytrack", "Parsec", "parallel", "body tracking, flipped-frame differencing", kernels.bodytrack),
        ("facesim", "Parsec", "parallel", "face simulation, symmetric mesh operator", kernels.facesim),
        ("freqmine", "Parsec", "parallel", "frequent itemset mining, folded transaction scan", kernels.freqmine),
        ("namd", "Spec2006", "sequential", "molecular dynamics, symmetric pair forces", kernels.namd),
        ("povray", "Spec2006", "sequential", "ray tracing, diagonal/mirrored buffer gathers", kernels.povray),
        ("mesa", "local", "sequential", "3-D graphics, texture swizzle", kernels.mesa),
        ("h264", "local", "sequential", "video encoding, motion-search window", kernels.h264),
        ("spmv_banded", IRREGULAR_SUITE, "parallel", "sparse matrix-vector, banded random sparsity (gather)", kernels.spmv_banded),
        ("spmv_random", IRREGULAR_SUITE, "parallel", "sparse matrix-vector, block-random sparsity (BSR gather)", kernels.spmv_random),
        ("mesh_edge", IRREGULAR_SUITE, "sequential", "unstructured-mesh edge flux, patchwise edge list (scatter)", kernels.mesh_edge),
        ("histogram", IRREGULAR_SUITE, "sequential", "histogram accumulation into banked data-dependent bins", kernels.histogram),
        ("csr_sweep", IRREGULAR_SUITE, "sequential", "CSR neighborhood sweep over a community graph (2-D index)", kernels.csr_sweep),
    ]
    table: dict[str, Workload] = {}
    for name, suite, kind, description, builder in entries:
        built = builder()
        if len(built) == 3:
            source, num_blocks, index_data = built
            frozen = tuple(
                (arr, tuple(values)) for arr, values in sorted(index_data.items())
            )
        else:
            source, num_blocks = built
            frozen = ()
        table[name] = Workload(
            name, suite, kind, description, source, num_blocks, frozen
        )
    return table


WORKLOADS: dict[str, Workload] = _build()


def workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise UnknownWorkloadError(name, sorted(WORKLOADS)) from None


def all_workloads(suite: str | None = None) -> list[Workload]:
    """Every registered workload, optionally filtered by suite name."""
    if suite is None:
        return list(WORKLOADS.values())
    return [w for w in WORKLOADS.values() if w.suite == suite]


def paper_workloads() -> list[Workload]:
    """The twelve affine Table 2 applications the figures run."""
    return [w for w in WORKLOADS.values() if w.suite != IRREGULAR_SUITE]


def irregular_workloads() -> list[Workload]:
    """The trace-tagged irregular suite."""
    return all_workloads(IRREGULAR_SUITE)


def suites() -> list[str]:
    """Distinct suite names, in registry order."""
    seen: dict[str, None] = {}
    for w in WORKLOADS.values():
        seen.setdefault(w.suite, None)
    return list(seen)


def application_table(suite: str | None = None) -> str:
    """Render our Table 2 (name, suite, origin, data size, iterations)."""
    from repro.util.tables import format_table

    rows = []
    for w in all_workloads(suite):
        nest = w.nest()
        rows.append(
            (
                w.name,
                w.suite,
                w.kind,
                f"{w.data_bytes() / 1024:.0f}KB",
                nest.iteration_count(),
                len(nest.accesses),
                w.description,
            )
        )
    return format_table(
        ["application", "suite", "origin", "data", "iterations", "refs", "description"],
        rows,
        title="Table 2: applications (scaled kernels; see DESIGN.md substitutions)",
    )
