"""Kernel sources for the twelve applications.

Each builder returns (source, num_blocks): the loop-language source of the
kernel and the default data-block count for tagging.  The access patterns
model the data-sharing structure of each application class:

* **mirrored / folded gathers** (galgel, bodytrack, namd, freqmine,
  povray) — every element is read by several iterations that sit *far
  apart* in the iteration space (mirrored modes of an oscillatory solver,
  flipped reference frames, symmetric force pairs, folded scans).  A
  contiguous (Base) distribution places the sharers on cores without any
  cache affinity, and no intra-core transform (Base+) can repair that:
  only topology-aware placement co-locates them.
* **multi-tap bands** (equake, cg, sp, h264) — strided sharing at a reach
  of several data blocks; chained groups reward both placement and the
  Figure 7 group *scheduling*.
* **stencil** (applu) — near-neighbor sharing only; the default
  distribution is already nearly aligned, so gains are small (the paper's
  per-application variation shows the same).
* **transpose** (facesim, mesa) — row/column-crossing references with
  pathological default order (power-of-two rows conflict in the cache
  sets); conventional locality optimization (Base+) shines here, and
  topology-aware placement adds cross-core sharing on top.
"""

from __future__ import annotations


def galgel(n: int = 256, band: int = 16) -> tuple[str, int]:
    """Fluid dynamics: oscillatory instability — mirrored modes + local band.

    The two coupling scales are the point: the mirror pairs want
    socket-level co-location while the {band}-row band wants pair-level
    (shared L2) co-location, so the best mapping depends on the whole
    cache topology (this is the paper's Figure 2 motivating application).
    """
    src = f"""
// galgel: oscillatory instability analysis.  Each cell couples with its
// vertical mirror image (a far iteration) and with cells {band} rows away
// (near iterations) - two sharing scales.
array V[{n}][{n}];
array W[{n}][{n}];
parallel for (i = {band}; i < {n - band}; i++)
  for (j = 0; j < {n}; j++)
    W[i][j] = V[i][j] + V[{n - 1} - i][j] + V[i + {band}][j] + V[i - {band}][j];
"""
    return src, 64


def applu(n: int = 200) -> tuple[str, int]:
    """SSOR solver: 5-point stencil sweep (near-neighbor sharing only)."""
    src = f"""
// applu: SSOR relaxation step over the interior of the grid.
array U0[{n + 2}][{n + 2}];
array U1[{n + 2}][{n + 2}];
parallel for (i = 1; i <= {n}; i++)
  for (j = 1; j <= {n}; j++)
    U1[i][j] = U0[i][j] + U0[i - 1][j] + U0[i + 1][j]
             + U0[i][j - 1] + U0[i][j + 1];
"""
    return src, 64


def equake(m: int = 98304, num_blocks: int = 192) -> tuple[str, int]:
    """Seismic wave propagation: five-tap symmetric band at long reach.

    ``num_blocks`` counts blocks over *both* arrays; the tap reaches are
    exact multiples of the block extent so the sharing chains align with
    block boundaries (the partition never splits a tap pair).
    """
    block = (2 * m) // num_blocks  # elements per block
    k1 = 4 * block
    k2 = 8 * block
    src = f"""
// equake: wave-front update couples element j with j +/- K1 and j +/- K2
// (reaches of 4 and 8 data blocks), so each element is read by five
// far-apart iterations.  Reaches are exact block multiples.
array A[{m}];
array B[{m}];
parallel for (j = {k2}; j < {m - k2}; j++)
  B[j] = A[j] + A[j + {k1}] + A[j - {k1}] + A[j + {k2}] + A[j - {k2}];
"""
    return src, num_blocks


def cg(m: int = 98304, num_blocks: int = 96) -> tuple[str, int]:
    """Conjugate gradient: banded sparse matrix-vector, four off-diagonals."""
    block = m // num_blocks
    k1 = 6 * block
    k2 = 18 * block
    src = f"""
// cg: y = banded A*x with off-diagonals at reaches of 6 and 18 blocks.
array X[{m}];
array Y[{m}];
parallel for (i = {k2}; i < {m - k2}; i++)
  Y[i] = X[i] + X[i + {k1}] + X[i - {k1}] + X[i + {k2}] + X[i - {k2}];
"""
    return src, num_blocks


def sp(n: int = 224, band: int = 56) -> tuple[str, int]:
    """Scalar penta-diagonal solver: wide vertical band in the grid."""
    src = f"""
// sp: penta-diagonal coupling along i at distances {band} and {2 * band} rows.
array P0[{n}][{n}];
array P1[{n}][{n}];
parallel for (i = {band}; i < {n - band}; i++)
  for (j = 0; j < {n}; j++)
    P1[i][j] = P0[i][j] + P0[i + {band}][j] + P0[i - {band}][j];
"""
    return src, 64


def bodytrack(n: int = 256) -> tuple[str, int]:
    """Body tracking: likelihood over the frame and its two flips."""
    src = f"""
// bodytrack: the likelihood kernel reads the frame, its vertical flip and
// its double flip - three far-apart sharers per element.
array F0[{n}][{n}];
array D[{n}][{n}];
parallel for (i = 0; i < {n}; i++)
  for (j = 0; j < {n}; j++)
    D[i][j] = F0[i][j] + F0[{n - 1} - i][j] + F0[{n - 1} - i][{n - 1} - j];
"""
    return src, 96


def facesim(n: int = 256) -> tuple[str, int]:
    """Face simulation: symmetric mesh operator (transpose coupling)."""
    src = f"""
// facesim: symmetric stiffness application couples E[i][j] with E[j][i];
// the power-of-two row size makes the default column order pathological.
array E[{n}][{n}];
array S[{n}][{n}];
parallel for (i = 0; i < {n}; i++)
  for (j = 0; j < {n}; j++)
    S[i][j] = E[i][j] + E[j][i];
"""
    return src, 32


def freqmine(m: int = 49152) -> tuple[str, int]:
    """Frequent itemset mining: four-tap folded transaction scan."""
    src = f"""
// freqmine: the counting pass reads the transaction list from both ends
// of each half (folded scan), so every element is read twice from
// iterations on opposite sides of the iteration space.
array T[{2 * m}];
array C[{m}];
parallel for (j = 0; j < {m}; j++)
  C[j] = C[j] + T[j] + T[{m - 1} - j] + T[j + {m}] + T[{2 * m - 1} - j];
"""
    return src, 96


def namd(c: int = 96, k: int = 512) -> tuple[str, int]:
    """Molecular dynamics: mirrored-cell pair forces over a cell list."""
    src = f"""
// namd: force on particle (c, k) accumulates its mirror cell partners
// (C-1-c, k) and (C-1-c, K-1-k) - symmetric pair interactions.
array Q[{c}][{k}];
array F[{c}][{k}];
parallel for (i = 0; i < {c}; i++)
  for (j = 0; j < {k}; j++)
    F[i][j] = Q[i][j] + Q[{c - 1} - i][j] + Q[{c - 1} - i][{k - 1} - j];
"""
    return src, 64


def povray(n: int = 256) -> tuple[str, int]:
    """Ray tracing: diagonal + mirrored buffer gathers."""
    src = f"""
// povray: secondary-ray gather mixes the transposed buffer with the
// vertically mirrored one.
array I0[{n}][{n}];
array I1[{n}][{n}];
parallel for (i = 0; i < {n}; i++)
  for (j = 0; j < {n}; j++)
    I1[i][j] = I0[i][j] + I0[j][i] + I0[{n - 1} - i][j];
"""
    return src, 32


def mesa(n: int = 256) -> tuple[str, int]:
    """3-D graphics: texture swizzle (transpose + vertical flip)."""
    src = f"""
// mesa: swizzled texture copy reading the transposed and flip-transposed
// texture; the column-major reads with a power-of-two row size have
// terrible default order (the Base+ transforms shine here).
array X[{n}][{n}];
array O[{n}][{n}];
parallel for (i = 0; i < {n}; i++)
  for (j = 0; j < {n}; j++)
    O[i][j] = X[j][i] + X[{n - 1} - j][i];
"""
    return src, 32


def h264(n: int = 240, window: int = 60) -> tuple[str, int]:
    """H.264 motion estimation: search-window gathers around each block."""
    src = f"""
// h264: motion search reads the reference frame at +/- the window offset
// in both dimensions (four-tap window).
array C0[{n}][{n}];
array P[{n}][{n}];
array R[{n}][{n}];
parallel for (i = {window}; i < {n - window}; i++)
  for (j = {window}; j < {n - window}; j++)
    R[i][j] = C0[i][j] + P[i][j + {window}] + P[i][j - {window}]
            + P[i + {window}][j] + P[i - {window}][j];
"""
    return src, 96
