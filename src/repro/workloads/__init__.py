"""The evaluation workloads: the paper's Table 2 plus the irregular suite.

The paper evaluates on applu, galgel, equake (SpecOMP), cg, sp (NAS),
bodytrack, facesim, freqmine (Parsec), namd, povray (Spec2006), and two
locally maintained codes (mesa, H.264).  We cannot ship those programs,
so each application is represented by an affine loop-nest kernel that
models the *data-sharing structure* of its dominant phase — which is the
only property the paper's pass consumes (its input is the iteration
space, the affine references, and the cache topology).  Data sizes are
scaled to the simulated machines so that the data-to-cache-capacity
ratios sit in the regime the paper studies (working sets exceeding the
aggregate last-level capacity).

Beyond Table 2, the ``irregular`` suite adds kernels with data-dependent
subscripts (SpMV, mesh edge update, histogram, CSR sweep) that exercise
the trace-based tagging fallback; see ``docs/WORKLOADS.md``.

See :data:`repro.workloads.registry.WORKLOADS` for the full table and
:func:`repro.workloads.registry.workload` to fetch one by name.
"""

from repro.workloads.registry import (
    IRREGULAR_SUITE,
    WORKLOADS,
    Workload,
    all_workloads,
    application_table,
    irregular_workloads,
    paper_workloads,
    suites,
    workload,
)

__all__ = [
    "IRREGULAR_SUITE",
    "WORKLOADS",
    "Workload",
    "all_workloads",
    "application_table",
    "irregular_workloads",
    "paper_workloads",
    "suites",
    "workload",
]
