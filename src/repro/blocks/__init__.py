"""Data blocks, iteration tags, and iteration groups (Section 3.3).

The paper logically partitions all data into equal-sized blocks
β0..β(n-1) that never cross array boundaries, tags every iteration with
the bit vector of blocks it accesses, and collects iterations with equal
tags into iteration groups Φ_τ.  This package implements that machinery:

* :class:`~repro.blocks.datablocks.DataBlockPartition` — the logical block
  partition over a program's arrays;
* :mod:`repro.blocks.tags` — tag operations (dot product, bitwise sum,
  Hamming distance) on integer bitsets;
* :class:`~repro.blocks.groups.IterationGroup` /
  :class:`~repro.blocks.groups.GroupSet` — iteration groups and the
  partition invariants (disjoint, covering);
* :mod:`~repro.blocks.tagger` — tagging driver plus the paper's
  L1-capacity-based block-size selection heuristic (Section 4.1).
"""

from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.groups import GroupSet, IterationGroup
from repro.blocks.tagger import choose_block_size, tag_iterations

__all__ = [
    "DataBlockPartition",
    "GroupSet",
    "IterationGroup",
    "choose_block_size",
    "tag_iterations",
]
