"""The pluggable access-analysis seam of the mapping frontend.

Tagging — computing each iteration's data-block tag — is the first point
in the mapping pipeline that needs to *understand* a nest's references.
The paper's machinery only handles affine subscripts; this module turns
that assumption into an explicit seam with two interchangeable
implementations:

* :class:`AffineAnalysis` — the static path.  Resolves every reference to
  its closed linear offset form and runs the vectorized/scalar tagging
  kernels.  Selected whenever ``nest.is_affine()``; its output is pinned
  bit-identical to the pre-seam frontend by differential tests.
* :class:`TraceAnalysis` — the dynamic fallback.  Instruments a recorded
  execution of the nest (:func:`repro.sim.trace.record_access_offsets`)
  and derives the per-iteration tags from the observed element offsets.
  It accepts any nest; on affine nests it reproduces
  :class:`AffineAnalysis`'s groups bit-identically, which is what lets
  the two implementations share one ``TagArtifact`` fingerprint space.

The trace is deterministic (a pure function of the nest and its
index-array data) and bounded: its length is ``iterations x references``,
known before recording, and :data:`TRACE_EVENT_BUDGET` caps it the same
way ``max_groups`` caps group explosion.

:func:`select_analysis` picks the first implementation that accepts the
nest; :func:`repro.blocks.tagger.tag_iterations` — the single entry point
every caller (pipeline stage, monolithic mapper, locality baseline) goes
through — dispatches through it, so downstream stages (clustering,
distribution, scheduling, simulation) run on trace-derived tags without
modification.

Observability: trace-path selections emit ``tagging.trace.*`` counters —
``tagging.trace.nests`` (selections), ``tagging.trace.declined_affine``
(non-affine references that made the static path decline),
``tagging.trace.events`` (recorded trace length) — plus the standard
``kernels.fallback.non-affine`` fallback reason.
"""

from __future__ import annotations

from repro import obs
from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.groups import GroupSet, IterationGroup
from repro.errors import BlockingError
from repro.ir.loops import LoopNest
from repro.kernels import note_fallback

#: Upper bound on recorded trace events (iterations x references).  Keeps
#: the fallback's cost predictable; nests beyond it must raise their block
#: size (fewer, coarser groups do not help — the trace length is fixed by
#: the nest), shrink the space, or stay affine.
TRACE_EVENT_BUDGET = 2_000_000


class AccessAnalysis:
    """Interface of a mapping-frontend access analysis."""

    #: Short identifier, used in spans/counters and documentation.
    name = "abstract"

    def analyzes(self, nest: LoopNest) -> bool:
        """True when this analysis can tag the nest."""
        raise NotImplementedError

    def tag(
        self,
        nest: LoopNest,
        partition: DataBlockPartition,
        max_groups: int | None = None,
        backend: str = "auto",
    ) -> GroupSet:
        """Partition the nest's iterations into groups by tag."""
        raise NotImplementedError


class AffineAnalysis(AccessAnalysis):
    """The paper's static path: closed offset forms + tagging kernels."""

    name = "affine"

    def analyzes(self, nest: LoopNest) -> bool:
        return nest.is_affine()

    def tag(
        self,
        nest: LoopNest,
        partition: DataBlockPartition,
        max_groups: int | None = None,
        backend: str = "auto",
    ) -> GroupSet:
        from repro.blocks.tagger import _tag_affine

        return _tag_affine(nest, partition, max_groups, backend)


class TraceAnalysis(AccessAnalysis):
    """Trace-based tagging: derive tags from a recorded execution.

    The recorded trace visits iterations in execution order and evaluates
    every reference concretely, so the bucketing below sees exactly the
    offsets the affine kernels would compute — grouping, write/read tag
    accumulation, and the first-iteration group order are copied from the
    scalar oracle verbatim, which is what makes the two paths
    fingerprint-compatible.
    """

    name = "trace"

    def __init__(self, max_events: int = TRACE_EVENT_BUDGET):
        self.max_events = max_events

    def analyzes(self, nest: LoopNest) -> bool:
        return True

    def tag(
        self,
        nest: LoopNest,
        partition: DataBlockPartition,
        max_groups: int | None = None,
        backend: str = "auto",
    ) -> GroupSet:
        if not nest.accesses:
            raise BlockingError(f"nest {nest.name!r} has no array accesses to tag")
        nest.validate_access_bounds()
        events = nest.iteration_count() * len(nest.accesses)
        if events > self.max_events:
            raise BlockingError(
                f"trace-based tagging of nest {nest.name!r} would record "
                f"{events} events, over the {self.max_events} budget"
            )
        from repro.sim.trace import record_access_offsets

        geometry = []
        for access in nest.accesses:
            first = partition.blocks_of_array(access.array.name).start
            per_block = partition.elements_per_block(access.array.name)
            geometry.append((first, per_block, access.is_write))

        with obs.span(
            "tag.iterations", nest=nest.name, iterations=nest.iteration_count()
        ) as sp:
            buckets: dict[int, list[tuple[int, ...]]] = {}
            write_tags: dict[int, int] = {}
            read_tags: dict[int, int] = {}
            for point, offsets in record_access_offsets(nest):
                tag = 0
                wtag = 0
                rtag = 0
                for offset, (first, per_block, is_write) in zip(offsets, geometry):
                    bit = 1 << (first + offset // per_block)
                    tag |= bit
                    if is_write:
                        wtag |= bit
                    else:
                        rtag |= bit
                bucket = buckets.get(tag)
                if bucket is None:
                    buckets[tag] = [point]
                    write_tags[tag] = wtag
                    read_tags[tag] = rtag
                    if max_groups is not None and len(buckets) > max_groups:
                        raise BlockingError(
                            f"tagging produced more than {max_groups} groups; "
                            "increase the data block size"
                        )
                else:
                    bucket.append(point)
                    write_tags[tag] |= wtag
                    read_tags[tag] |= rtag

            groups = [
                IterationGroup(tag, points, write_tags[tag], read_tags[tag])
                for tag, points in buckets.items()
            ]
            groups.sort(key=lambda g: g.iterations[0])
            result = GroupSet(nest, partition, groups)

            declined = sum(1 for a in nest.accesses if not a.is_affine)
            sp.tag(backend=self.name, groups=len(result.groups), trace_events=events)
            obs.count(f"kernels.backend.{self.name}")
            obs.count("tag.groups_formed", len(result.groups))
            obs.count("tagging.trace.nests")
            obs.count("tagging.trace.events", events)
            if declined:
                obs.count("tagging.trace.declined_affine", declined)
                note_fallback("non-affine", "tagging")
            return result


#: Registered analyses, in selection-priority order.
ANALYSES: tuple[AccessAnalysis, ...] = (AffineAnalysis(), TraceAnalysis())


def select_analysis(nest: LoopNest) -> AccessAnalysis:
    """The first registered analysis that accepts the nest."""
    for analysis in ANALYSES:
        if analysis.analyzes(nest):
            return analysis
    raise BlockingError(f"no access analysis accepts nest {nest.name!r}")
