"""Micro-benchmark: trace-based tagging cost per irregular kernel.

The trace fallback replays every (iteration, reference) event in pure
Python, so its cost — unlike the vectorized affine path — scales
linearly with the nest and cannot hide behind NumPy.  This module times
:class:`~repro.blocks.analysis.TraceAnalysis` on each registry kernel of
the irregular suite and writes ``BENCH_tagging.json`` in the shape
``scripts/bench_check.py`` reads.  The suite is registered there as
*informational*: millisecond-scale numbers on shared runners are
noise-bound, but the trend is recorded on every CI run.

The budget is per recorded event rather than per nest — kernels of very
different sizes share one knob that way.  The ``speedup`` metric is
``budget_ms / measured_ms`` for the whole nest: >1 means under budget,
and a drop against the committed baseline means trace tagging got
slower.

Usage::

    PYTHONPATH=src python -m repro.blocks.bench --out BENCH_tagging.json
"""

from __future__ import annotations

import argparse
import json
import time

from repro.blocks.analysis import TraceAnalysis
from repro.blocks.datablocks import DataBlockPartition
from repro.workloads import irregular_workloads

#: Time allowance per trace event (iterations x references).  10 µs per
#: event is ~5x the interpreter cost observed on an idle machine — slack
#: for shared CI runners, tight enough to catch an accidental
#: quadratic-cost regression.
DEFAULT_BUDGET_US_PER_EVENT = 10.0
DEFAULT_REPEATS = 3


def time_workload(app, repeats: int) -> tuple[float, int, int]:
    """Best-of-N wall time (ms) for trace tagging one registry kernel,
    plus the trace length and resulting group count."""
    program = app.program()
    nest = app.nest()
    arrays = [program.arrays[a.name] for a in nest.arrays()]
    partition = DataBlockPartition(arrays, app.block_size())
    analysis = TraceAnalysis()
    best = float("inf")
    groups = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = analysis.tag(nest, partition)
        best = min(best, (time.perf_counter() - start) * 1000.0)
        groups = len(result.groups)
    events = nest.iteration_count() * len(nest.accesses)
    return best, events, groups


def run(
    budget_us_per_event: float = DEFAULT_BUDGET_US_PER_EVENT,
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    entries = []
    for app in irregular_workloads():
        ms, events, groups = time_workload(app, repeats)
        budget_ms = budget_us_per_event * events / 1000.0
        entries.append({
            "kernel": app.name,
            "ms": round(ms, 3),
            "events": events,
            "groups": groups,
            "budget_ms": round(budget_ms, 3),
            "speedup": round(budget_ms / ms, 3) if ms else 0.0,
        })
    return {
        "suite": "tagging",
        "config": {
            "repeats": repeats,
            "budget_us_per_event": budget_us_per_event,
        },
        "entries": entries,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_tagging.json")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--budget-us-per-event", type=float,
                        default=DEFAULT_BUDGET_US_PER_EVENT)
    args = parser.parse_args(argv)

    report = run(budget_us_per_event=args.budget_us_per_event,
                 repeats=args.repeats)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    for entry in report["entries"]:
        flag = "" if entry["ms"] <= entry["budget_ms"] else "  OVER BUDGET"
        print(f"{entry['kernel']:<14} {entry['ms']:8.2f}ms "
              f"({entry['events']} events, {entry['groups']} groups, "
              f"budget {entry['budget_ms']:.0f}ms){flag}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
