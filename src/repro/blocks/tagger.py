"""Iteration tagging driver and block-size selection (Sections 3.3, 4.1).

:func:`tag_iterations` sweeps a nest's iteration space, computes for every
iteration the set of data blocks its references touch, and groups
iterations by tag.  :func:`choose_block_size` implements the paper's
heuristic for picking the block size: the data touched by the most
aggressive iteration group (one whose iterations touch the maximum number
of distinct blocks a single iteration can touch) must fit in L1.

Tagging is the hottest path of the whole pass (O(K * references) work),
so it is backed by the vectorized kernel layer: ``backend="auto"`` (the
default) uses :func:`repro.kernels.tagging.tag_iterations_numpy` when
NumPy is available, falling back to the scalar reference below for
non-rectangular spaces or tags beyond the lane budget.  The scalar code
is the oracle — the differential tests in ``tests/kernels/`` pin the two
backends to bit-identical :class:`~repro.blocks.groups.GroupSet`\\ s.

Both of the above assume affine references.  :func:`tag_iterations` is
the access-analysis seam (:mod:`repro.blocks.analysis`): nests with
indirect references (``A[idx[i]]``) dispatch to the trace-based tagging
fallback instead, which derives the same ``GroupSet`` shape from a
recorded execution.
"""

from __future__ import annotations

from repro import obs
from repro.errors import BlockingError
from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.groups import GroupSet, IterationGroup
from repro.ir.loops import LoopNest, Program
from repro.kernels import resolve_backend

#: (constant, coeffs, first_block, elems_per_block, is_write) per access.
ResolvedAccess = tuple[int, tuple[int, ...], int, int, bool]


def resolve_accesses(nest: LoopNest, partition: DataBlockPartition) -> list[ResolvedAccess]:
    """Pre-resolve per-access metadata out of the hot loop: the linear
    offset form plus the array's block geometry."""
    resolved = []
    for access in nest.accesses:
        constant, coeffs = access.offset_form()
        first = partition.blocks_of_array(access.array.name).start
        per_block = partition.elements_per_block(access.array.name)
        resolved.append((constant, coeffs, first, per_block, access.is_write))
    return resolved


def tag_iterations(
    nest: LoopNest,
    partition: DataBlockPartition,
    max_groups: int | None = None,
    backend: str = "auto",
) -> GroupSet:
    """Partition a nest's iterations into iteration groups by tag.

    For every iteration I the tag gets bit βj set iff some reference
    ``R_r`` of the nest has ``R_r(I)`` in block βj (both reads and
    writes).  Write and read tags are tracked separately for the group
    dependence graph.  ``max_groups`` guards against block sizes so small
    that the group count explodes (the compile-time cliff the paper
    reports when moving from 2KB to 256-byte blocks).  ``backend``
    selects the kernel implementation (see :mod:`repro.kernels`); every
    backend produces the identical ``GroupSet``.

    This is the access-analysis seam's entry point: affine nests take the
    static path below, nests with indirect references dispatch to the
    trace-based fallback (:mod:`repro.blocks.analysis`).  Either way the
    resulting ``GroupSet`` feeds the downstream stages unchanged.
    """
    from repro.blocks.analysis import AffineAnalysis, select_analysis

    analysis = select_analysis(nest)
    if not isinstance(analysis, AffineAnalysis):
        return analysis.tag(nest, partition, max_groups=max_groups, backend=backend)
    return _tag_affine(nest, partition, max_groups, backend)


def _tag_affine(
    nest: LoopNest,
    partition: DataBlockPartition,
    max_groups: int | None,
    backend: str,
) -> GroupSet:
    """The static (affine) implementation behind :class:`AffineAnalysis`."""
    if not nest.accesses:
        raise BlockingError(f"nest {nest.name!r} has no array accesses to tag")
    nest.validate_access_bounds()
    resolved = resolve_accesses(nest, partition)
    with obs.span(
        "tag.iterations", nest=nest.name, iterations=nest.iteration_count()
    ) as sp:
        result = None
        ran = "python"
        if resolve_backend(backend) == "numpy":
            from repro.kernels.tagging import tag_iterations_numpy

            result = tag_iterations_numpy(nest, partition, resolved, max_groups)
            if result is not None:
                ran = "numpy"
        if result is None:
            result = _tag_iterations_scalar(nest, partition, resolved, max_groups)
        sp.tag(backend=ran, groups=len(result.groups))
        obs.count(f"kernels.backend.{ran}")
        obs.count("tag.groups_formed", len(result.groups))
        return result


def _tag_iterations_scalar(
    nest: LoopNest,
    partition: DataBlockPartition,
    resolved: list[ResolvedAccess],
    max_groups: int | None,
) -> GroupSet:
    """The scalar reference implementation (and numpy-backend oracle)."""
    buckets: dict[int, list[tuple[int, ...]]] = {}
    write_tags: dict[int, int] = {}
    read_tags: dict[int, int] = {}
    for point in nest.iterations():
        tag = 0
        wtag = 0
        rtag = 0
        for constant, coeffs, first, per_block, is_write in resolved:
            offset = constant
            for c, x in zip(coeffs, point):
                offset += c * x
            bit = 1 << (first + offset // per_block)
            tag |= bit
            if is_write:
                wtag |= bit
            else:
                rtag |= bit
        bucket = buckets.get(tag)
        if bucket is None:
            buckets[tag] = [point]
            write_tags[tag] = wtag
            read_tags[tag] = rtag
            if max_groups is not None and len(buckets) > max_groups:
                raise BlockingError(
                    f"tagging produced more than {max_groups} groups; "
                    "increase the data block size"
                )
        else:
            bucket.append(point)
            write_tags[tag] |= wtag
            read_tags[tag] |= rtag

    groups = [
        IterationGroup(tag, points, write_tags[tag], read_tags[tag])
        for tag, points in buckets.items()
    ]
    # Deterministic order: by first (lexicographically smallest) iteration.
    groups.sort(key=lambda g: g.iterations[0])
    return GroupSet(nest, partition, groups)


def choose_block_size(
    program: Program,
    nest: LoopNest,
    l1_capacity: int,
    default: int = 2048,
    minimum: int = 64,
) -> int:
    """Paper heuristic (Section 4.1) for the data block size.

    The most aggressive iteration group touches as many distinct blocks
    as a single iteration can, which is bounded by the reference count R
    of the nest (each affine reference touches one element, hence one
    block, per iteration).  We require ``R * block_size <= L1`` and
    return the largest power-of-two block size that satisfies it, capped
    at ``default`` (the paper's 2KB default) — "this sets an upper bound,
    and any lower value would be good as well".
    """
    if l1_capacity <= 0:
        raise BlockingError("L1 capacity must be positive")
    references = max(1, len(nest.accesses))
    bound = l1_capacity // references
    size = minimum
    while size * 2 <= min(bound, default):
        size *= 2
    element_sizes = {a.element_size for a in program.arrays.values()}
    for element_size in element_sizes:
        if size % element_size:
            raise BlockingError(
                f"selected block size {size} not a multiple of element size {element_size}"
            )
    return size
