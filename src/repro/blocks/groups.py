"""Iteration groups Φ_τ and group sets.

An :class:`IterationGroup` is the set of iterations carrying one tag τ:
all iterations in the group access exactly the data blocks with a 1 in τ.
Beyond the access tag, each group records its *write* tag (blocks some
iteration writes) and *read* tag, which the block-granularity group
dependence graph of Section 3.5.2 is built from.

A :class:`GroupSet` is the full tagging result for one loop nest; it
checks the paper's partition invariants (groups are pairwise disjoint and
collectively cover the iteration space K).
"""

from __future__ import annotations

import itertools
import threading
from collections.abc import Iterator, Sequence

from repro.errors import BlockingError
from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.tags import render
from repro.ir.loops import LoopNest
from repro.poly.codegen import generate_point_list_enumerator

_SETATTR = object.__setattr__


class IterationGroup:
    """All iterations of a nest sharing one data-block tag."""

    __slots__ = ("tag", "iterations", "write_tag", "read_tag", "ident", "origin")

    # Idents come from an itertools counter, not a hand-incremented class
    # attribute: ``next()`` on it is a single C call, hence atomic under
    # the GIL and safe for future parallel tagging.  Tests (and any other
    # caller needing order-independent idents) rewind it with
    # :meth:`reset_idents`.
    _ident_counter = itertools.count()
    _ident_lock = threading.Lock()
    # Bumped on every reset: caches that hold groups across resets (the
    # pipeline artifact store) key on it so pre-reset entries go stale
    # instead of colliding with freshly numbered groups.
    _ident_epoch = 0

    def __init__(
        self,
        tag: int,
        iterations: Sequence[tuple[int, ...]],
        write_tag: int = 0,
        read_tag: int = 0,
        origin: int | None = None,
    ):
        iterations = tuple(sorted(iterations))
        if not iterations:
            raise BlockingError("iteration group cannot be empty")
        _SETATTR(self, "tag", tag)
        _SETATTR(self, "iterations", iterations)
        _SETATTR(self, "write_tag", write_tag)
        _SETATTR(self, "read_tag", read_tag)
        ident = next(IterationGroup._ident_counter)
        _SETATTR(self, "ident", ident)
        # Lineage for load-balancing splits: parts keep their source
        # group's ident here, so the scheduler can translate dependence
        # edges (which reference pre-split idents) onto the parts.
        _SETATTR(self, "origin", ident if origin is None else origin)

    @classmethod
    def reset_idents(cls, start: int = 0) -> None:
        """Rewind the ident sequence (test isolation / reproducibility).

        Idents are only guaranteed unique among groups created since the
        last reset, so callers must not mix groups from both sides of a
        reset in one mapping pipeline.  The autouse fixture in
        ``tests/conftest.py`` resets before every test, making ident
        assignment independent of test execution order.
        """
        with cls._ident_lock:
            cls._ident_counter = itertools.count(start)
            cls._ident_epoch += 1

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IterationGroup is immutable")

    @property
    def size(self) -> int:
        """S(Φ_τ): the number of iterations in the group."""
        return len(self.iterations)

    def split(self, first_size: int) -> tuple["IterationGroup", "IterationGroup"]:
        """Break the group into two same-tag groups (load balancing step).

        The first part receives the ``first_size`` lexicographically
        smallest iterations.
        """
        if not 0 < first_size < self.size:
            raise BlockingError(
                f"cannot split group of {self.size} iterations at {first_size}"
            )
        return (
            IterationGroup(self.tag, self.iterations[:first_size], self.write_tag, self.read_tag, origin=self.origin),
            IterationGroup(self.tag, self.iterations[first_size:], self.write_tag, self.read_tag, origin=self.origin),
        )

    def enumerator_source(
        self, func_name: str = "enumerate_points", mode: str = "auto"
    ) -> str:
        """Generated code that enumerates this group's iterations.

        Tag-defined groups are irregular (non-convex) in general.  Two
        artifacts are possible: an explicit point table (``"points"``),
        or — when the group decomposes into few integer boxes, which the
        row-major-contiguous groups tagging produces usually do — a union
        of loop nests (``"boxes"``), the exact analogue of what Omega's
        ``codegen`` emits for a union of convex sets.  ``"auto"`` picks
        boxes when the cover is at least 4x smaller than the point count.
        Note box mode enumerates box by box (each box in lexicographic
        order); the point table preserves global lexicographic order.
        """
        from repro.poly.codegen import generate_loop_nest
        from repro.poly.decompose import boxes_from_points, union_from_points

        if mode not in ("auto", "points", "boxes"):
            raise BlockingError(f"unknown enumerator mode {mode!r}")
        if mode in ("auto", "boxes"):
            boxes = boxes_from_points(self.iterations)
            if mode == "boxes" or len(boxes) * 4 <= len(self.iterations):
                dims = tuple(f"i{k}" for k in range(len(self.iterations[0])))
                union = union_from_points(dims, self.iterations)
                return generate_loop_nest(union, func_name)
        return generate_point_list_enumerator(self.iterations, func_name)

    def __repr__(self) -> str:
        return f"IterationGroup(tag={bin(self.tag)}, size={self.size})"


class GroupSet:
    """The tagging result for one nest: groups plus provenance."""

    __slots__ = ("nest", "partition", "groups")

    def __init__(
        self,
        nest: LoopNest,
        partition: DataBlockPartition,
        groups: Sequence[IterationGroup],
    ):
        object.__setattr__(self, "nest", nest)
        object.__setattr__(self, "partition", partition)
        object.__setattr__(self, "groups", tuple(groups))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("GroupSet is immutable")

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self) -> Iterator[IterationGroup]:
        return iter(self.groups)

    def total_iterations(self) -> int:
        return sum(g.size for g in self.groups)

    def verify_partition(self) -> None:
        """Check the Section 3.3 invariants; raise on violation.

        * groups are pairwise disjoint (distinct tags guarantee this, but
          we check the iterations directly);
        * the union of the groups is exactly the nest's iteration space.
        """
        seen: set[tuple[int, ...]] = set()
        for group in self.groups:
            for point in group.iterations:
                if point in seen:
                    raise BlockingError(f"iteration {point} appears in two groups")
                seen.add(point)
        space = set(self.nest.iterations())
        if seen != space:
            missing = space - seen
            extra = seen - space
            raise BlockingError(
                f"groups do not partition K: {len(missing)} missing, {len(extra)} extra"
            )
        tags = [g.tag for g in self.groups]
        if len(set(tags)) != len(tags):
            # Same-tag groups only arise from load-balancing splits, which
            # happen after tagging; a fresh GroupSet must have unique tags.
            raise BlockingError("duplicate tags in freshly tagged GroupSet")

    def describe(self, max_rows: int = 16) -> str:
        """Paper-style table of groups and their tags (cf. Figure 10(a))."""
        n = self.partition.num_blocks
        lines = [f"{len(self.groups)} iteration groups over {n} data blocks"]
        for group in self.groups[:max_rows]:
            lines.append(f"  tau={render(group.tag, n)}  size={group.size}")
        if len(self.groups) > max_rows:
            lines.append(f"  ... {len(self.groups) - max_rows} more")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"GroupSet({len(self.groups)} groups, nest={self.nest.name!r})"
