"""Logical data-block partition (the β blocks of Section 3.3).

Blocks are equal-sized (``block_size`` bytes), never cross array
boundaries (each array starts a new block; its last block may be
partially filled), and are numbered sequentially array by array in
declaration order — consecutive blocks of an array get consecutive
numbers and the first block of the next array continues the numbering,
mirroring the paper's conventions (i)-(iv).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import BlockingError
from repro.ir.arrays import Array
from repro.util.mathutil import ceil_div


class DataBlockPartition:
    """Partition of a set of arrays into equal-sized logical blocks."""

    __slots__ = ("arrays", "block_size", "_first_block", "_elems_per_block", "num_blocks")

    def __init__(self, arrays: Sequence[Array], block_size: int):
        if block_size <= 0:
            raise BlockingError(f"block size must be positive, got {block_size}")
        arrays = tuple(arrays)
        if not arrays:
            raise BlockingError("partition needs at least one array")
        names = [a.name for a in arrays]
        if len(set(names)) != len(names):
            raise BlockingError(f"duplicate array names in {names}")
        first_block: dict[str, int] = {}
        elems_per_block: dict[str, int] = {}
        next_block = 0
        for array in arrays:
            if block_size % array.element_size:
                raise BlockingError(
                    f"block size {block_size} not a multiple of element size "
                    f"{array.element_size} (array {array.name!r})"
                )
            per_block = block_size // array.element_size
            first_block[array.name] = next_block
            elems_per_block[array.name] = per_block
            next_block += ceil_div(array.size_elements, per_block)
        object.__setattr__(self, "arrays", arrays)
        object.__setattr__(self, "block_size", block_size)
        object.__setattr__(self, "_first_block", first_block)
        object.__setattr__(self, "_elems_per_block", elems_per_block)
        object.__setattr__(self, "num_blocks", next_block)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("DataBlockPartition is immutable")

    def block_of(self, array_name: str, element_offset: int) -> int:
        """Global block number holding the given element of an array."""
        try:
            first = self._first_block[array_name]
        except KeyError:
            raise BlockingError(f"array {array_name!r} not in partition") from None
        per_block = self._elems_per_block[array_name]
        if element_offset < 0:
            raise BlockingError(f"negative element offset {element_offset}")
        return first + element_offset // per_block

    def blocks_of_array(self, array_name: str) -> range:
        """The contiguous global block numbers belonging to an array."""
        try:
            first = self._first_block[array_name]
        except KeyError:
            raise BlockingError(f"array {array_name!r} not in partition") from None
        array = next(a for a in self.arrays if a.name == array_name)
        count = ceil_div(array.size_elements, self._elems_per_block[array_name])
        return range(first, first + count)

    def array_of_block(self, block: int) -> Array:
        """The array a global block number belongs to."""
        if not 0 <= block < self.num_blocks:
            raise BlockingError(f"block {block} out of range (n={self.num_blocks})")
        for array in self.arrays:
            blocks = self.blocks_of_array(array.name)
            if block in blocks:
                return array
        raise BlockingError(f"block {block} matched no array")  # pragma: no cover

    def elements_per_block(self, array_name: str) -> int:
        return self._elems_per_block[array_name]

    def __repr__(self) -> str:
        return (
            f"DataBlockPartition({len(self.arrays)} arrays, "
            f"{self.block_size}B blocks, n={self.num_blocks})"
        )
