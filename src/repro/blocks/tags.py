"""Tag algebra (Section 3.3 / Figure 6 of the paper).

A tag τ = d0 d1 ... d(n-1) is a bit vector over the n data blocks; we
store it as a Python integer with bit j set iff block βj is accessed.
The paper's three tag operations are re-exported here under their
domain names:

* ``dot(τ1, τ2)`` — the dot product, i.e. the number of common 1 bits;
  the clustering algorithm's affinity measure;
* ``bitwise_sum(τ1, τ2, ...)`` — the OR of tags; the tag of a cluster;
* ``hamming(τ1, τ2)`` — the Hamming distance; the local scheduler's
  dissimilarity measure.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.util.bitset import (
    bit_count,
    bits_of,
    dot_product as dot,
    from_indices,
    hamming_distance as hamming,
    to_bitstring,
)

__all__ = ["dot", "hamming", "bitwise_sum", "ones", "blocks_in", "tag_from_blocks", "render"]


def bitwise_sum(*tags: int) -> int:
    """The cluster tag: bitwise OR of member tags (Figure 6, 'BitwiseSum')."""
    acc = 0
    for tag in tags:
        acc |= tag
    return acc


def ones(tag: int) -> int:
    """Number of data blocks a tag covers."""
    return bit_count(tag)


def blocks_in(tag: int) -> list[int]:
    """Block numbers covered by a tag, ascending."""
    return list(bits_of(tag))


def tag_from_blocks(blocks: Iterable[int]) -> int:
    """Tag covering exactly the given block numbers."""
    return from_indices(blocks)


def render(tag: int, num_blocks: int) -> str:
    """Paper-style rendering, d0 first (e.g. τ=1100 for blocks {0,1})."""
    return to_bitstring(tag, num_blocks)
