"""Kernighan-Lin style bipartition improvement (ablation comparator).

The paper's Figure 6 clusters greedily by dot-product merging.  A classic
alternative for the two-way cuts that dominate our cache trees is
Kernighan-Lin: start from any balanced bipartition and repeatedly swap
the pair of groups with the best *gain* (reduction in cut sharing),
taking the best prefix of a swap sequence.  ``kl_bipartition`` refines a
cluster pair in place;
``cluster_one_level_kl`` is a drop-in alternative to
:func:`repro.mapping.clustering.cluster_one_level` for ``k == 2`` that
runs the greedy merge first and KL after.

The ablation benchmark compares the two on the evaluation workloads; on
chain/mirror sharing graphs the greedy merge is usually already optimal,
while dense transpose graphs leave KL a few percent of cut weight.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import MappingError
from repro.blocks.groups import IterationGroup
from repro.blocks.tags import dot
from repro.mapping.balance import Cluster, balance_clusters


def cut_weight(a: Sequence[IterationGroup], b: Sequence[IterationGroup]) -> int:
    """Total tag sharing crossing the (a, b) cut."""
    total = 0
    for ga in a:
        for gb in b:
            total += dot(ga.tag, gb.tag)
    return total


def _gain(group: IterationGroup, own: Sequence[IterationGroup], other: Sequence[IterationGroup]) -> int:
    """External minus internal sharing of ``group`` (KL 'D' value)."""
    external = sum(dot(group.tag, g.tag) for g in other)
    internal = sum(dot(group.tag, g.tag) for g in own if g is not group)
    return external - internal


def kl_bipartition(
    a: list[IterationGroup],
    b: list[IterationGroup],
    size_tolerance: float = 0.15,
    max_rounds: int = 4,
) -> tuple[list[IterationGroup], list[IterationGroup]]:
    """Refine a bipartition by KL swap passes.

    Swaps pairs (one group from each side) while the cut weight improves;
    a swap is admissible only if both sides stay within
    ``size_tolerance`` of the half-total.  Returns new lists.
    """
    a = list(a)
    b = list(b)
    if not a or not b:
        return a, b
    total = sum(g.size for g in a) + sum(g.size for g in b)
    low = total / 2 * (1 - size_tolerance) - 1
    up = total / 2 * (1 + size_tolerance) + 1

    for _ in range(max_rounds):
        best_gain = 0
        best_pair: tuple[IterationGroup, IterationGroup] | None = None
        size_a = sum(g.size for g in a)
        for ga in a:
            for gb in b:
                delta = gb.size - ga.size
                if not (low <= size_a + delta <= up):
                    continue
                gain = (
                    _gain(ga, a, b)
                    + _gain(gb, b, a)
                    - 2 * dot(ga.tag, gb.tag)
                )
                if gain > best_gain:
                    best_gain = gain
                    best_pair = (ga, gb)
        if best_pair is None:
            break
        ga, gb = best_pair
        a.remove(ga)
        b.remove(gb)
        a.append(gb)
        b.append(ga)
    return a, b


def cluster_one_level_kl(
    groups: Sequence[IterationGroup], threshold: float
) -> list[Cluster]:
    """Two-way clustering: greedy merge seeding + KL refinement + balance."""
    from repro.mapping.clustering import cluster_one_level

    if len(groups) < 2:
        raise MappingError("KL bipartition needs at least two groups")
    seeded = cluster_one_level(groups, 2, threshold)
    refined_a, refined_b = kl_bipartition(
        list(seeded[0].groups), list(seeded[1].groups)
    )
    clusters = [Cluster(refined_a), Cluster(refined_b)]
    balance_clusters(clusters, threshold)
    return clusters
