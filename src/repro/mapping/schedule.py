"""Dependence-aware local iteration-group scheduling (Figure 7).

The scheduler orders the iteration groups assigned to each core in
*rounds*.  Within a round it walks the cores under each first-level shared
cache in order and picks, for every core, groups that

* depend only on groups scheduled in **previous** rounds (so a barrier
  after each round enforces every dependence), and
* maximize ``alpha * dot(tag, last group of the previous core)  +
  beta * dot(tag, last group of this core)`` — the horizontal (shared
  cache) and vertical (private L1) reuse terms of Section 3.5.3.

Round quotas follow the paper: the first core of a shared-cache set
catches up to the set's last core, each later core catches up to its left
neighbor, so iteration counts stay aligned and the barrier at the end of
each round is cheap.  A global progress fallback guarantees termination on
any acyclic dependence graph.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro import obs
from repro.errors import ScheduleError
from repro.blocks.groups import IterationGroup
from repro.blocks.tags import dot, ones
from repro.kernels import fits_lane_budget, note_fallback, resolve_backend
from repro.mapping.dependence import GroupDependenceGraph
from repro.topology.tree import Machine


class _TagCache:
    """Scorer state shared by the scheduler's backends.

    Caches the popcount of every group tag and answers "dot of each
    candidate against one reference tag" queries — as Python big-int
    popcounts (scalar) or as one vectorized popcount over packed lanes
    (numpy).  Both return the same exact integers, so the float score
    arithmetic downstream is bit-identical across backends.
    """

    def __init__(self, groups: Sequence[IterationGroup], backend: str):
        self._ones: dict[int, int] = {}
        self._packed = None
        self._row: dict[int, int] = {}
        if resolve_backend(backend) != "numpy" or not groups:
            return
        num_bits = max(g.tag.bit_length() for g in groups)
        if not fits_lane_budget(num_bits):
            note_fallback("lane-budget", "schedule")
            return
        from repro.kernels.lanes import lanes_for_bits, pack_tags, popcount

        self._packed = pack_tags([g.tag for g in groups], lanes_for_bits(num_bits))
        self._row = {g.ident: i for i, g in enumerate(groups)}
        counts = popcount(self._packed).sum(axis=1).tolist()
        self._ones = {g.ident: c for g, c in zip(groups, counts)}

    def ones(self, group: IterationGroup) -> int:
        count = self._ones.get(group.ident)
        if count is None:
            count = ones(group.tag)
            self._ones[group.ident] = count
        return count

    def dots(
        self, candidates: Sequence[IterationGroup], ref: IterationGroup
    ) -> list[int]:
        if self._packed is not None:
            from repro.kernels.affinity import dot_many

            rows = self._packed[[self._row[g.ident] for g in candidates]]
            return dot_many(self._packed[self._row[ref.ident]], rows).tolist()
        ref_tag = ref.tag
        return [dot(g.tag, ref_tag) for g in candidates]


@dataclass
class ScheduledCore:
    """Mutable per-core scheduling state."""

    core: int
    remaining: list[IterationGroup]
    rounds: list[list[IterationGroup]] = field(default_factory=list)
    scheduled_count: int = 0

    @property
    def last_group(self) -> IterationGroup | None:
        for rnd in reversed(self.rounds):
            if rnd:
                return rnd[-1]
        return None

    def flat_schedule(self) -> list[IterationGroup]:
        return [g for rnd in self.rounds for g in rnd]


def schedule_groups(
    assignments: Sequence[Sequence[IterationGroup]],
    machine: Machine,
    graph: GroupDependenceGraph | None = None,
    alpha: float = 0.5,
    beta: float = 0.5,
    backend: str = "auto",
) -> list[list[list[IterationGroup]]]:
    """Schedule per-core group lists into rounds.

    Returns ``result[core][round]`` = ordered groups that core executes in
    that round; a barrier separates consecutive rounds.  ``graph`` must be
    acyclic at group granularity (see
    :meth:`~repro.mapping.dependence.GroupDependenceGraph.acyclified`).
    ``backend`` selects the tag-dot kernel (see :mod:`repro.kernels`);
    the resulting schedule is identical for every backend.
    """
    with obs.span(
        "schedule",
        cores=len(assignments),
        groups=sum(len(groups) for groups in assignments),
        alpha=alpha,
        beta=beta,
    ) as sp:
        result = _schedule_groups(assignments, machine, graph, alpha, beta, backend)
        rounds = max((len(core_rounds) for core_rounds in result), default=0)
        sp.tag(rounds=rounds)
        obs.count("schedule.rounds", rounds)
        return result


def _schedule_groups(
    assignments: Sequence[Sequence[IterationGroup]],
    machine: Machine,
    graph: GroupDependenceGraph | None,
    alpha: float,
    beta: float,
    backend: str,
) -> list[list[list[IterationGroup]]]:
    if len(assignments) != machine.num_cores:
        raise ScheduleError(
            f"{len(assignments)} assignments for {machine.num_cores} cores"
        )
    cores = [
        ScheduledCore(core, sorted(groups, key=lambda g: g.iterations[0]))
        for core, groups in enumerate(assignments)
    ]
    sets = machine.first_shared_level_groups()
    preds = graph.preds if graph is not None else {}
    # Load balancing may have split graph-node groups into same-origin
    # parts with fresh idents.  Translate the graph onto the parts: an
    # edge from origin p gates on *every* part of p, and parts of one
    # origin chain in lexicographic order (a split partitions the lex
    # order, so the chain preserves the group's internal dependences).
    # Without splits this reduces exactly to ``preds``.
    requirement_of: dict[int, tuple[int, ...]] = {}
    if graph is not None:
        parts_of: dict[int, list[IterationGroup]] = {}
        for groups in assignments:
            for g in groups:
                parts_of.setdefault(g.origin, []).append(g)
        for parts in parts_of.values():
            parts.sort(key=lambda g: g.iterations[0])
        for groups in assignments:
            for g in groups:
                req: list[int] = []
                for p in preds.get(g.origin, ()):
                    req.extend(part.ident for part in parts_of.get(p, ()))
                own = parts_of[g.origin]
                position = own.index(g)
                if position > 0:
                    req.append(own[position - 1].ident)
                requirement_of[g.ident] = tuple(req)
    tag_cache = _TagCache([g for groups in assignments for g in groups], backend)

    prev_sched: set[int] = set()
    remaining_total = sum(len(c.remaining) for c in cores)

    def eligible(state: ScheduledCore, current_round: set[int]) -> list[IterationGroup]:
        out = []
        for group in state.remaining:
            requirement = requirement_of.get(group.ident, ())
            if all(p in prev_sched for p in requirement):
                out.append(group)
        return out

    while remaining_total > 0:
        current_round: set[int] = set()
        progressed = 0
        for core_set in sets:
            last = cores[core_set[-1]]
            for position, core_id in enumerate(core_set):
                state = cores[core_id]
                state.rounds.append([])
                if not state.remaining:
                    continue
                left = cores[core_set[position - 1]] if position > 0 else None

                def pick_best(candidates: list[IterationGroup]) -> IterationGroup:
                    left_last = left.last_group if left is not None else None
                    own_last = state.last_group
                    h = tag_cache.dots(candidates, left_last) if left_last is not None else None
                    v = tag_cache.dots(candidates, own_last) if own_last is not None else None
                    best_index = 0
                    best_score: tuple | None = None
                    for index, group in enumerate(candidates):
                        horizontal = alpha * h[index] if h is not None else 0.0
                        vertical = beta * v[index] if v is not None else 0.0
                        score = (
                            horizontal + vertical,
                            -tag_cache.ones(group),
                            -group.ident,
                        )
                        if best_score is None or score > best_score:
                            best_index, best_score = index, score
                    return candidates[best_index]

                # Quota: schedule at least one group, then keep catching up
                # to the pace setter (left neighbor; the first core chases
                # the set's last core, as in Figure 7).
                pace = last if position == 0 else left
                took = 0
                while True:
                    if not state.remaining:
                        break
                    if took > 0:
                        target = pace.scheduled_count if pace is not state else None
                        if target is None or state.scheduled_count >= target:
                            break
                    candidates = eligible(state, current_round)
                    if not candidates:
                        break
                    if state.last_group is None and position == 0 and took == 0:
                        # Very first pick on the set's lead core: the most
                        # local group (fewest 1 bits in its tag).
                        best = min(candidates, key=lambda g: (tag_cache.ones(g), g.ident))
                    else:
                        best = pick_best(candidates)
                    state.remaining.remove(best)
                    state.rounds[-1].append(best)
                    state.scheduled_count += best.size
                    current_round.add(best.ident)
                    took += 1
                    progressed += 1
                    remaining_total -= 1

        if progressed == 0:
            # Deadlock under the quota rules: force one globally eligible
            # group (exists for any DAG) to guarantee termination.
            forced = False
            for state in cores:
                candidates = eligible(state, current_round)
                if candidates:
                    best = min(candidates, key=lambda g: g.ident)
                    state.remaining.remove(best)
                    state.rounds[-1].append(best)
                    state.scheduled_count += best.size
                    remaining_total -= 1
                    obs.count("schedule.forced_picks")
                    forced = True
                    break
            if not forced:
                raise ScheduleError(
                    "no schedulable group: the group dependence graph has a "
                    "cycle spanning cores (acyclify it first)"
                )
        prev_sched |= current_round

    # Trim trailing empty rounds and align round counts across cores.
    max_rounds = max((len(c.rounds) for c in cores), default=0)
    result: list[list[list[IterationGroup]]] = []
    for state in cores:
        rounds = state.rounds + [[] for _ in range(max_rounds - len(state.rounds))]
        result.append(rounds)
    while result and all(not rounds[-1] for rounds in result):
        for rounds in result:
            rounds.pop()
    return result


def dependence_only_schedule(
    assignments: Sequence[Sequence[IterationGroup]],
    machine: Machine,
    graph: GroupDependenceGraph | None = None,
    backend: str = "auto",
) -> list[list[list[IterationGroup]]]:
    """Scheduling that honors dependences but ignores locality (α = β = 0).

    This is the default used by plain TopologyAware in the paper's
    evaluation: "once the iteration distribution is carried out, the
    iteration groups assigned to each core are scheduled considering only
    data dependencies".  Without dependences, each core gets a single
    round in assignment order (no barriers at all).
    """
    if graph is None or graph.num_edges == 0:
        with obs.span("schedule", cores=len(assignments), trivial=True) as sp:
            sp.tag(rounds=1)
            obs.count("schedule.rounds", 1)
            return [
                [sorted(groups, key=lambda g: g.iterations[0])] if groups else [[]]
                for groups in assignments
            ]
    return schedule_groups(assignments, machine, graph, alpha=0.0, beta=0.0, backend=backend)
