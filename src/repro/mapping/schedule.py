"""Dependence-aware local iteration-group scheduling (Figure 7).

The scheduler orders the iteration groups assigned to each core in
*rounds*.  Within a round it walks the cores under each first-level shared
cache in order and picks, for every core, groups that

* depend only on groups scheduled in **previous** rounds (so a barrier
  after each round enforces every dependence), and
* maximize ``alpha * dot(tag, last group of the previous core)  +
  beta * dot(tag, last group of this core)`` — the horizontal (shared
  cache) and vertical (private L1) reuse terms of Section 3.5.3.

Round quotas follow the paper: the first core of a shared-cache set
catches up to the set's last core, each later core catches up to its left
neighbor, so iteration counts stay aligned and the barrier at the end of
each round is cheap.  A global progress fallback guarantees termination on
any acyclic dependence graph.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.blocks.groups import IterationGroup
from repro.blocks.tags import dot, ones
from repro.mapping.dependence import GroupDependenceGraph
from repro.topology.tree import Machine


@dataclass
class ScheduledCore:
    """Mutable per-core scheduling state."""

    core: int
    remaining: list[IterationGroup]
    rounds: list[list[IterationGroup]] = field(default_factory=list)
    scheduled_count: int = 0

    @property
    def last_group(self) -> IterationGroup | None:
        for rnd in reversed(self.rounds):
            if rnd:
                return rnd[-1]
        return None

    def flat_schedule(self) -> list[IterationGroup]:
        return [g for rnd in self.rounds for g in rnd]


def schedule_groups(
    assignments: Sequence[Sequence[IterationGroup]],
    machine: Machine,
    graph: GroupDependenceGraph | None = None,
    alpha: float = 0.5,
    beta: float = 0.5,
) -> list[list[list[IterationGroup]]]:
    """Schedule per-core group lists into rounds.

    Returns ``result[core][round]`` = ordered groups that core executes in
    that round; a barrier separates consecutive rounds.  ``graph`` must be
    acyclic at group granularity (see
    :meth:`~repro.mapping.dependence.GroupDependenceGraph.acyclified`).
    """
    if len(assignments) != machine.num_cores:
        raise ScheduleError(
            f"{len(assignments)} assignments for {machine.num_cores} cores"
        )
    cores = [
        ScheduledCore(core, sorted(groups, key=lambda g: g.iterations[0]))
        for core, groups in enumerate(assignments)
    ]
    sets = machine.first_shared_level_groups()
    preds = graph.preds if graph is not None else {}

    prev_sched: set[int] = set()
    remaining_total = sum(len(c.remaining) for c in cores)

    def eligible(state: ScheduledCore, current_round: set[int]) -> list[IterationGroup]:
        out = []
        for group in state.remaining:
            requirement = preds.get(group.ident, ())
            if all(p in prev_sched for p in requirement):
                out.append(group)
        return out

    while remaining_total > 0:
        current_round: set[int] = set()
        progressed = 0
        for core_set in sets:
            last = cores[core_set[-1]]
            for position, core_id in enumerate(core_set):
                state = cores[core_id]
                state.rounds.append([])
                if not state.remaining:
                    continue
                left = cores[core_set[position - 1]] if position > 0 else None

                def score(group: IterationGroup) -> tuple:
                    horizontal = (
                        alpha * dot(group.tag, left.last_group.tag)
                        if left is not None and left.last_group is not None
                        else 0.0
                    )
                    vertical = (
                        beta * dot(group.tag, state.last_group.tag)
                        if state.last_group is not None
                        else 0.0
                    )
                    return (horizontal + vertical, -ones(group.tag), -group.ident)

                # Quota: schedule at least one group, then keep catching up
                # to the pace setter (left neighbor; the first core chases
                # the set's last core, as in Figure 7).
                pace = last if position == 0 else left
                took = 0
                while True:
                    if not state.remaining:
                        break
                    if took > 0:
                        target = pace.scheduled_count if pace is not state else None
                        if target is None or state.scheduled_count >= target:
                            break
                    candidates = eligible(state, current_round)
                    if not candidates:
                        break
                    if state.last_group is None and position == 0 and took == 0:
                        # Very first pick on the set's lead core: the most
                        # local group (fewest 1 bits in its tag).
                        best = min(candidates, key=lambda g: (ones(g.tag), g.ident))
                    else:
                        best = max(candidates, key=score)
                    state.remaining.remove(best)
                    state.rounds[-1].append(best)
                    state.scheduled_count += best.size
                    current_round.add(best.ident)
                    took += 1
                    progressed += 1
                    remaining_total -= 1

        if progressed == 0:
            # Deadlock under the quota rules: force one globally eligible
            # group (exists for any DAG) to guarantee termination.
            forced = False
            for state in cores:
                candidates = eligible(state, current_round)
                if candidates:
                    best = min(candidates, key=lambda g: g.ident)
                    state.remaining.remove(best)
                    state.rounds[-1].append(best)
                    state.scheduled_count += best.size
                    remaining_total -= 1
                    forced = True
                    break
            if not forced:
                raise ScheduleError(
                    "no schedulable group: the group dependence graph has a "
                    "cycle spanning cores (acyclify it first)"
                )
        prev_sched |= current_round

    # Trim trailing empty rounds and align round counts across cores.
    max_rounds = max((len(c.rounds) for c in cores), default=0)
    result: list[list[list[IterationGroup]]] = []
    for state in cores:
        rounds = state.rounds + [[] for _ in range(max_rounds - len(state.rounds))]
        result.append(rounds)
    while result and all(not rounds[-1] for rounds in result):
        for rounds in result:
            rounds.pop()
    return result


def dependence_only_schedule(
    assignments: Sequence[Sequence[IterationGroup]],
    machine: Machine,
    graph: GroupDependenceGraph | None = None,
) -> list[list[list[IterationGroup]]]:
    """Scheduling that honors dependences but ignores locality (α = β = 0).

    This is the default used by plain TopologyAware in the paper's
    evaluation: "once the iteration distribution is carried out, the
    iteration groups assigned to each core are scheduled considering only
    data dependencies".  Without dependences, each core gets a single
    round in assignment order (no barriers at all).
    """
    if graph is None or graph.num_edges == 0:
        return [
            [sorted(groups, key=lambda g: g.iterations[0])] if groups else [[]]
            for groups in assignments
        ]
    return schedule_groups(assignments, machine, graph, alpha=0.0, beta=0.0)
