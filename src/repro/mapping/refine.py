"""Local-search refinement of a group-to-core assignment.

The hierarchical descent of Figure 6 is greedy; its quality can vary with
the shape of the descent.  This pass polishes the result against the same
objective the clustering pursues — co-locate sharers under the fastest
common cache — expressed as the latency-weighted distinct-block count
over the cache tree (:func:`repro.mapping.optimal.sharing_cost`'s core
term).  Moves and swaps are accepted only when they reduce the objective
*and* keep every core's iteration count inside the balance window, so the
load-balancing guarantee of the clustering step is preserved.

This is an engineering addition on top of the paper's algorithm (the
paper describes only the greedy descent); it is on by default in
:class:`~repro.mapping.distribute.TopologyAwareMapper` and can be
disabled with ``refine=False`` for an ablation.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.blocks.groups import IterationGroup
from repro.blocks.tags import ones
from repro.mapping.balance import balance_limits
from repro.topology.tree import Machine

Assignment = list[list[IterationGroup]]


def _tree_cost(core_tags: Sequence[int], machine: Machine) -> float:
    cost = 0.0
    for node in machine.cache_nodes():
        tag = 0
        for core in node.cores_below():
            tag |= core_tags[core]
        cost += node.spec.latency * ones(tag)
    return cost


def refine_assignment(
    assignments: Assignment,
    machine: Machine,
    balance_threshold: float = 0.10,
    max_passes: int = 4,
    max_groups: int = 400,
) -> Assignment:
    """Hill-climb moves/swaps that reduce the cache-tree sharing cost.

    Returns a new assignment (input untouched).  Deterministic: groups and
    cores are visited in order and the best improving move is applied
    first-fit per group.  The neighborhood scan is quadratic in the group
    count, so refinement is skipped beyond ``max_groups`` groups (the
    greedy clustering stands on its own there; the Figure 16 small-block
    sweeps would otherwise dominate compile time).
    """
    state: Assignment = [list(groups) for groups in assignments]
    n_cores = len(state)
    if n_cores <= 1:
        return state
    if sum(len(groups) for groups in state) > max_groups:
        return state
    sizes = [sum(g.size for g in groups) for groups in state]
    total = sum(sizes)
    low, up = balance_limits(total, n_cores, balance_threshold)
    # The clustering's own output may sit on the window edge; widen by one
    # iteration so refinement is never blocked outright.
    low -= 1
    up += 1

    def core_tag(core: int) -> int:
        tag = 0
        for g in state[core]:
            tag |= g.tag
        return tag

    core_tags = [core_tag(c) for c in range(n_cores)]
    current = _tree_cost(core_tags, machine)

    for _ in range(max_passes):
        improved = False
        for donor in range(n_cores):
            for group in list(state[donor]):
                best_gain = 0.0
                best_action: tuple | None = None
                for recipient in range(n_cores):
                    if recipient == donor:
                        continue
                    # Move.
                    if (
                        sizes[donor] - group.size >= low
                        and sizes[recipient] + group.size <= up
                    ):
                        gain = _move_gain(
                            state, core_tags, machine, donor, group, recipient, None
                        )
                        if gain > best_gain + 1e-9:
                            best_gain = gain
                            best_action = ("move", recipient, None)
                    # Swaps with size-compatible partners.
                    for other in state[recipient]:
                        delta = other.size - group.size
                        if not (
                            low <= sizes[donor] + delta <= up
                            and low <= sizes[recipient] - delta <= up
                        ):
                            continue
                        gain = _move_gain(
                            state, core_tags, machine, donor, group, recipient, other
                        )
                        if gain > best_gain + 1e-9:
                            best_gain = gain
                            best_action = ("swap", recipient, other)
                if best_action is not None:
                    kind, recipient, other = best_action
                    state[donor].remove(group)
                    state[recipient].append(group)
                    sizes[donor] -= group.size
                    sizes[recipient] += group.size
                    if kind == "swap":
                        state[recipient].remove(other)
                        state[donor].append(other)
                        sizes[donor] += other.size
                        sizes[recipient] -= other.size
                    core_tags[donor] = core_tag(donor)
                    core_tags[recipient] = core_tag(recipient)
                    current -= best_gain
                    improved = True
        if not improved:
            break
    return state


def _move_gain(
    state: Assignment,
    core_tags: list[int],
    machine: Machine,
    donor: int,
    group: IterationGroup,
    recipient: int,
    swap_with: IterationGroup | None,
) -> float:
    """Cost reduction of moving ``group`` donor->recipient (and optionally
    ``swap_with`` back), computed incrementally on the two changed cores."""
    new_tags = list(core_tags)
    donor_groups = [g for g in state[donor] if g is not group]
    recipient_groups = list(state[recipient]) + [group]
    if swap_with is not None:
        recipient_groups = [g for g in recipient_groups if g is not swap_with]
        donor_groups.append(swap_with)
    tag = 0
    for g in donor_groups:
        tag |= g.tag
    new_tags[donor] = tag
    tag = 0
    for g in recipient_groups:
        tag |= g.tag
    new_tags[recipient] = tag
    # Only tree nodes covering donor or recipient change cost.
    before = after = 0.0
    for node in machine.cache_nodes():
        below = node.cores_below()
        if donor in below or recipient in below:
            old_tag = 0
            new_tag = 0
            for core in below:
                old_tag |= core_tags[core]
                new_tag |= new_tags[core]
            before += node.spec.latency * ones(old_tag)
            after += node.spec.latency * ones(new_tag)
    return before - after
