"""Simulation-guided parameter search (the paper's empirical tuning).

The paper picks tile sizes by trying them ("we experimented with
different tile sizes and selected the one that performed the best") and
bounds the block size analytically.  This module closes the loop the same
way for our own knobs: candidate block sizes (and optionally α/β weights)
are mapped and simulated, and the fastest configuration wins.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import MappingError
from repro.ir.loops import LoopNest, Program
from repro.runtime import execute_plan
from repro.sim.engine import SimConfig
from repro.topology.tree import Machine


@dataclass(frozen=True)
class TuneOutcome:
    """One tried configuration and its simulated cycles."""

    block_size: int
    alpha: float
    beta: float
    cycles: int


@dataclass(frozen=True)
class TuneResult:
    best: TuneOutcome
    trials: tuple[TuneOutcome, ...]

    def table(self) -> str:
        from repro.util.tables import format_table

        rows = [
            (t.block_size, f"{t.alpha:g}/{t.beta:g}", t.cycles,
             "<- best" if t == self.best else "")
            for t in self.trials
        ]
        return format_table(("block size", "a/b", "cycles", ""), rows,
                            title="autotune trials")


def autotune_block_size(
    program: Program,
    nest: LoopNest,
    machine: Machine,
    candidates: Sequence[int],
    local_scheduling: bool = False,
    balance_threshold: float = 0.10,
    weights: Sequence[tuple[float, float]] = ((0.5, 0.5),),
    config: SimConfig | None = None,
) -> TuneResult:
    """Map + simulate each candidate; return the fastest configuration.

    Candidates must be positive multiples of every array's element size.
    The search is exhaustive over ``candidates x weights`` — the paper's
    methodology, not a model.
    """
    if not candidates:
        raise MappingError("no block-size candidates given")
    from repro.pipeline import ArtifactStore, Knobs, MappingPipeline

    # One artifact store spans the whole candidates x weights grid: the
    # inner α/β sweep shares everything through distribution, so only
    # the scheduling stage reruns per weight pair.
    store = ArtifactStore()
    trials: list[TuneOutcome] = []
    for block_size in candidates:
        if block_size <= 0:
            raise MappingError(f"invalid block size {block_size}")
        for alpha, beta in weights:
            knobs = Knobs(
                block_size=block_size,
                balance_threshold=balance_threshold,
                alpha=alpha,
                beta=beta,
                local_scheduling=local_scheduling,
            )
            pipeline = MappingPipeline(machine, knobs, store=store)
            plan = pipeline.map_nest(program, nest).plan()
            cycles = execute_plan(plan, config=config).cycles
            trials.append(TuneOutcome(block_size, alpha, beta, cycles))
    best = min(trials, key=lambda t: (t.cycles, t.block_size))
    return TuneResult(best=best, trials=tuple(trials))
