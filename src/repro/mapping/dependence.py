"""Iteration-group dependence graph (Section 3.5.2).

Edges are derived from the exact iteration-level dependences of the nest:
if some iteration in group ``b`` depends on an iteration in group ``a``,
the graph holds the edge ``a -> b`` ("b after a").  Since iterations of
``a`` can also depend on iterations of ``b``, the raw graph can be cyclic;
:meth:`GroupDependenceGraph.acyclified` merges each strongly connected
component into a single super-group, exactly as the paper prescribes
("we remove all the cycles ... by merging the involved nodes").

The alternative dependence-handling policy of Section 3.5.2 — clustering
all dependent groups together by giving dependence edges infinite weight —
is provided by :func:`merge_dependent_groups`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.blocks.groups import IterationGroup
from repro.blocks.tags import bitwise_sum
from repro.ir.dependences import iteration_dependences
from repro.ir.loops import LoopNest


class GroupDependenceGraph:
    """DAG (or pre-merge digraph) over iteration-group idents."""

    __slots__ = ("nodes", "succs", "preds")

    def __init__(self, nodes: Sequence[int], edges: Sequence[tuple[int, int]]):
        self.nodes = tuple(nodes)
        node_set = set(self.nodes)
        self.succs: dict[int, set[int]] = {n: set() for n in self.nodes}
        self.preds: dict[int, set[int]] = {n: set() for n in self.nodes}
        for a, b in edges:
            if a not in node_set or b not in node_set:
                continue
            if a == b:
                continue
            self.succs[a].add(b)
            self.preds[b].add(a)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self.succs.values())

    def has_cycle(self) -> bool:
        return any(len(scc) > 1 for scc in self._sccs())

    def _sccs(self) -> list[list[int]]:
        """Tarjan's algorithm, iterative (deep graphs must not overflow)."""
        index: dict[int, int] = {}
        low: dict[int, int] = {}
        on_stack: set[int] = set()
        stack: list[int] = []
        sccs: list[list[int]] = []
        counter = [0]

        for root in self.nodes:
            if root in index:
                continue
            work: list[tuple[int, iter]] = [(root, iter(sorted(self.succs[root])))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(self.succs[succ]))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    sccs.append(sorted(scc))
        return sccs

    def acyclified(
        self, groups: Sequence[IterationGroup]
    ) -> tuple[list[IterationGroup], "GroupDependenceGraph"]:
        """Merge SCCs into super-groups; returns (new groups, DAG).

        Groups not participating in any cycle are returned unchanged
        (identity preserved); each multi-node SCC becomes one merged group
        whose tag/read/write tags are the bitwise sums of its members'.
        """
        by_ident = {g.ident: g for g in groups}
        sccs = self._sccs()
        rep: dict[int, int] = {}
        new_groups: list[IterationGroup] = []
        for scc in sccs:
            members = [by_ident[i] for i in scc if i in by_ident]
            if not members:
                continue
            if len(members) == 1:
                merged = members[0]
            else:
                iterations = [p for m in members for p in m.iterations]
                merged = IterationGroup(
                    bitwise_sum(*(m.tag for m in members)),
                    iterations,
                    bitwise_sum(*(m.write_tag for m in members)),
                    bitwise_sum(*(m.read_tag for m in members)),
                )
            new_groups.append(merged)
            for ident in scc:
                rep[ident] = merged.ident
        edges = set()
        for a in self.nodes:
            for b in self.succs[a]:
                ra, rb = rep[a], rep[b]
                if ra != rb:
                    edges.add((ra, rb))
        new_groups.sort(key=lambda g: g.iterations[0])
        dag = GroupDependenceGraph([g.ident for g in new_groups], sorted(edges))
        return new_groups, dag

    def topological_order(self) -> list[int]:
        """Kahn topological order (graph must be acyclic)."""
        indeg = {n: len(self.preds[n]) for n in self.nodes}
        ready = sorted(n for n, d in indeg.items() if d == 0)
        order: list[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in sorted(self.succs[node]):
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.nodes):
            from repro.errors import ScheduleError

            raise ScheduleError("graph has a cycle; acyclify first")
        return order

    def __repr__(self) -> str:
        return f"GroupDependenceGraph({len(self.nodes)} nodes, {self.num_edges} edges)"


def build_group_dependence_graph(
    nest: LoopNest,
    groups: Sequence[IterationGroup],
    limit: int | None = None,
) -> GroupDependenceGraph:
    """Lift the nest's iteration-level dependences to group granularity."""
    owner: dict[tuple[int, ...], int] = {}
    for group in groups:
        for point in group.iterations:
            owner[point] = group.ident
    edges: set[tuple[int, int]] = set()
    for pair in iteration_dependences(nest, limit=limit):
        a = owner.get(pair.source)
        b = owner.get(pair.sink)
        if a is None or b is None or a == b:
            continue
        edges.add((a, b))
    return GroupDependenceGraph([g.ident for g in groups], sorted(edges))


def merge_dependent_groups(
    groups: Sequence[IterationGroup], graph: GroupDependenceGraph
) -> list[IterationGroup]:
    """Infinite-edge-weight policy: co-cluster all dependence-connected groups.

    Every weakly connected component of the dependence graph collapses to
    one group, so the clustering step can never separate dependent
    iterations — correctness without inter-core synchronization, at the
    cost of parallelism (the paper's first option in Section 3.5.2).
    """
    parent: dict[int, int] = {g.ident: g.ident for g in groups}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for a in graph.nodes:
        for b in graph.succs[a]:
            if a in parent and b in parent:
                union(a, b)

    by_root: dict[int, list[IterationGroup]] = {}
    for group in groups:
        by_root.setdefault(find(group.ident), []).append(group)
    merged: list[IterationGroup] = []
    for members in by_root.values():
        if len(members) == 1:
            merged.append(members[0])
        else:
            merged.append(
                IterationGroup(
                    bitwise_sum(*(m.tag for m in members)),
                    [p for m in members for p in m.iterations],
                    bitwise_sum(*(m.write_tag for m in members)),
                    bitwise_sum(*(m.read_tag for m in members)),
                )
            )
    merged.sort(key=lambda g: g.iterations[0])
    return merged
