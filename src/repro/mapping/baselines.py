"""The comparison schemes of Section 4.1: Base, Base+, Local.

All schemes execute the *same* iteration set per core as each other (the
paper stresses this); they differ only in how iterations are partitioned
across cores and ordered within a core:

* **Base** — the original code, merely parallelized: contiguous chunks of
  the lexicographic iteration order, one per core, executed in original
  order (what a static OpenMP schedule does).
* **Base+** — Base's distribution, but each core's chunk is reordered by
  conventional locality optimization (legal loop permutation + iteration
  space tiling with an L1-fitted tile).
* **Local** — Base's distribution, but each core's iterations are grouped
  by data-block tag and the groups are scheduled with the Figure 7 local
  reorganization (the paper's "Local" bar in Figure 15).
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.groups import IterationGroup
from repro.blocks.tagger import tag_iterations
from repro.ir.loops import LoopNest
from repro.mapping.dependence import build_group_dependence_graph
from repro.mapping.distribute import ExecutablePlan
from repro.mapping.schedule import schedule_groups
from repro.topology.tree import Machine


def chunk_iterations(
    nest: LoopNest, num_cores: int
) -> list[list[tuple[int, ...]]]:
    """Contiguous, balanced chunks of the lexicographic iteration order."""
    if num_cores <= 0:
        raise MappingError("need at least one core")
    points = list(nest.iterations())
    n = len(points)
    chunks: list[list[tuple[int, ...]]] = []
    start = 0
    for core in range(num_cores):
        size = n // num_cores + (1 if core < n % num_cores else 0)
        chunks.append(points[start : start + size])
        start += size
    return chunks


def base_plan(nest: LoopNest, machine: Machine) -> ExecutablePlan:
    """Base: block distribution, original intra-core order, no barriers."""
    chunks = chunk_iterations(nest, machine.num_cores)
    rounds = tuple((tuple(chunk),) for chunk in chunks)
    return ExecutablePlan(machine, nest, rounds, "base")


def base_plus_plan(
    nest: LoopNest,
    machine: Machine,
    tile_sizes: tuple[int, ...] | None = None,
) -> ExecutablePlan:
    """Base+: Base's distribution with permutation + tiling per core.

    The permutation is the best legal locality permutation; the tile size
    defaults to the Section 4.1-style fit against the L1 capacity (callers
    sweeping tile sizes through the simulator can pass one explicitly,
    mimicking the paper's empirical selection).
    """
    from repro.transforms.permute import best_locality_permutation
    from repro.transforms.tiling import select_tile_sizes, tiled_order

    perm = best_locality_permutation(nest)
    if tile_sizes is None:
        l1 = machine.cache_path(0)[0].spec.size_bytes
        tile_sizes = select_tile_sizes(nest, l1)
    chunks = chunk_iterations(nest, machine.num_cores)
    rounds = tuple(
        (tuple(tiled_order(chunk, tile_sizes, perm)),) for chunk in chunks
    )
    return ExecutablePlan(machine, nest, rounds, "base+")


def local_plan(
    nest: LoopNest,
    machine: Machine,
    partition: DataBlockPartition,
    alpha: float = 0.5,
    beta: float = 0.5,
) -> ExecutablePlan:
    """Local: default distribution + Figure 7 local reorganization.

    Groups are computed globally by tag, then cut at the Base chunk
    boundaries so each core executes exactly Base's iteration set; the
    per-core (sub)groups are then scheduled with the α/β-weighted local
    scheduler.
    """
    group_set = tag_iterations(nest, partition)
    chunks = chunk_iterations(nest, machine.num_cores)
    owner: dict[tuple[int, ...], int] = {}
    for core, chunk in enumerate(chunks):
        for point in chunk:
            owner[point] = core

    assignments: list[list[IterationGroup]] = [[] for _ in range(machine.num_cores)]
    for group in group_set.groups:
        by_core: dict[int, list[tuple[int, ...]]] = {}
        for point in group.iterations:
            by_core.setdefault(owner[point], []).append(point)
        for core, points in by_core.items():
            assignments[core].append(
                IterationGroup(group.tag, points, group.write_tag, group.read_tag)
            )

    graph = None
    if not nest.parallel:
        flat = [g for groups in assignments for g in groups]
        raw = build_group_dependence_graph(nest, flat)
        # The chunk cut can split a dependence cycle across cores; merge
        # within-core SCC members only (cross-core cycles would change the
        # distribution, which Local must not do), then keep the DAG edges.
        if raw.has_cycle():
            ident_core = {g.ident: core for core, gs in enumerate(assignments) for g in gs}
            merged_assignments: list[list[IterationGroup]] = []
            flat2, dag = raw.acyclified(flat)
            # Re-home merged groups by their first iteration's owner.
            merged_assignments = [[] for _ in range(machine.num_cores)]
            for g in flat2:
                merged_assignments[owner[g.iterations[0]]].append(g)
            assignments = merged_assignments
            graph = dag
        else:
            graph = raw

    group_rounds = schedule_groups(assignments, machine, graph, alpha, beta)
    if graph is None or graph.num_edges == 0:
        # Dependence-free: no barriers needed (see TopologyAwareMapper).
        group_rounds = [
            [[g for rnd in core_rounds for g in rnd]] for core_rounds in group_rounds
        ]
    plan = ExecutablePlan.from_group_rounds(machine, nest, group_rounds, "local")
    return plan
