"""Hierarchical, cache-topology-driven clustering (Figure 6).

The descent walks the cache hierarchy tree level by level, starting at the
root (last-level cache, or off-chip memory when several LLCs exist).  At
each level every current cluster set is re-clustered into as many clusters
as the tree node has children, merging greedily by the tag dot product —
the paper's qualitative affinity measure — splitting when too few clusters
remain, and finally load balancing within the tunable threshold.  After
the full descent the number of leaf clusters equals the core count, and
left-to-right tree order gives the core assignment.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

from repro import obs
from repro.errors import MappingError
from repro.blocks.groups import IterationGroup
from repro.blocks.tags import dot
from repro.kernels import fits_lane_budget, note_fallback, resolve_backend
from repro.mapping.balance import Cluster, balance_clusters, balance_to_targets
from repro.topology.tree import Machine, TopologyNode


def cluster_one_level(
    groups: Sequence[IterationGroup], k: int, threshold: float, backend: str = "auto"
) -> list[Cluster]:
    """Cluster a set of iteration groups into exactly ``k`` clusters.

    Greedy agglomerative merging by maximum tag dot product (ties broken
    toward smaller combined size, then deterministically by group ids),
    followed by splitting when fewer than ``k`` clusters exist, and load
    balancing.

    The merge is deliberately *flat* (straight to ``k`` clusters), exactly
    as Figure 6 prescribes: a level of the cache tree with high fan-out is
    clustered in one shot.  This is what makes the hierarchy depth matter
    (the paper's Figure 20): a deeper tree hands the algorithm a sequence
    of small-fan-out decisions instead of one noisy flat cut.

    ``backend`` selects how the O(G^2) pair affinities are computed (see
    :mod:`repro.kernels`); the merge sequence — and therefore the result —
    is identical for every backend, because heap entries are the same
    exact integers either way.
    """
    result = _cluster_to_k(groups, k, backend)
    balance_clusters(result, threshold)
    return result


def cluster_weighted(
    groups: Sequence[IterationGroup],
    weights: Sequence[int],
    threshold: float,
    backend: str = "auto",
) -> list[Cluster]:
    """Cluster into ``len(weights)`` clusters sized proportionally to ``weights``.

    Used by the tree descent when sibling subtrees own unequal core
    counts (a pruned tree after core loss, or an asymmetric hierarchy):
    the merge/split phase is shared with :func:`cluster_one_level`, then
    clusters are matched to weight slots largest-to-largest and
    rebalanced toward the proportional targets.
    """
    k = len(weights)
    if any(w <= 0 for w in weights):
        raise MappingError(f"cluster weights must be positive, got {list(weights)}")
    result = _cluster_to_k(groups, k, backend)
    total = sum(c.size for c in result)
    wsum = sum(weights)
    targets = [total * w / wsum for w in weights]
    # Deterministic matching: heaviest cluster takes the heaviest target.
    slot_order = sorted(range(k), key=lambda i: (-targets[i], i))
    by_size = sorted(
        result, key=lambda c: (-c.size, min((g.ident for g in c.groups), default=-1))
    )
    slots: list[Cluster] = [None] * k  # type: ignore[list-item]
    for slot_index, cluster in zip(slot_order, by_size):
        slots[slot_index] = cluster
    balance_to_targets(slots, targets, threshold)
    return slots


def _cluster_to_k(
    groups: Sequence[IterationGroup], k: int, backend: str = "auto"
) -> list[Cluster]:
    """Greedy merge + split to exactly ``k`` clusters (no balancing)."""
    if k <= 0:
        raise MappingError("cluster count must be positive")
    clusters: list[Cluster | None] = [Cluster([g]) for g in groups]
    alive = len(clusters)
    if not clusters:
        # No groups at all (an already-empty branch of the descent): every
        # cluster is empty and the cores below it idle.
        return [Cluster() for _ in range(k)]

    # Merging only ORs tags together, so the widest input tag bounds every
    # cluster tag ever formed — the lane budget can be checked up front.
    use_numpy = resolve_backend(backend) == "numpy" and bool(clusters)
    if use_numpy:
        num_bits = max(c.tag.bit_length() for c in clusters)
        use_numpy = fits_lane_budget(num_bits)
        if not use_numpy:
            note_fallback("lane-budget", "clustering")
    obs.count(f"kernels.backend.{'numpy' if use_numpy else 'python'}")
    if use_numpy:
        from repro.kernels.affinity import dot_pairs
        from repro.kernels.lanes import lanes_for_bits, pack_tags

        packed = pack_tags([c.tag for c in clusters], lanes_for_bits(num_bits))

    # Lazy-deletion pair heap keyed by (-dot, combined size, ids).  Pairs
    # with zero affinity are left out: merging unrelated clusters is only a
    # packing decision, handled by the zero-affinity fallback below, and
    # skipping them keeps the heap near-linear for sparse sharing graphs.
    with obs.span(
        "affinity.pairs",
        groups=len(clusters),
        backend="numpy" if use_numpy else "python",
    ) as affinity_span:
        heap: list[tuple[int, int, int, int]] = []
        if use_numpy:
            sizes = [c.size for c in clusters]
            for i, j, weight in zip(*dot_pairs(packed)):
                heap.append((-weight, sizes[i] + sizes[j], i, j))
        else:
            for i in range(len(clusters)):
                tag_i = clusters[i].tag
                size_i = clusters[i].size
                for j in range(i + 1, len(clusters)):
                    weight = dot(tag_i, clusters[j].tag)
                    if weight > 0:
                        heap.append((-weight, size_i + clusters[j].size, i, j))
        heapq.heapify(heap)
        affinity_span.tag(pairs=len(heap))

    # Incremental pushes after a merge stay scalar on every backend: they
    # are O(alive) big-int dots against one tag, where the per-call numpy
    # packing overhead outweighs the vector win for typical tag widths.
    # The entries are the same exact integers either way.
    def push_pairs(new_index: int) -> None:
        new = clusters[new_index]
        for idx, other in enumerate(clusters):
            if other is None or idx == new_index:
                continue
            weight = dot(new.tag, other.tag)
            if weight > 0:
                heapq.heappush(
                    heap,
                    (-weight, new.size + other.size, min(idx, new_index), max(idx, new_index)),
                )

    while alive > k:
        merged = False
        while heap:
            _, __, i, j = heapq.heappop(heap)
            if clusters[i] is None or clusters[j] is None:
                continue
            a, b = clusters[i], clusters[j]
            clusters[i] = None
            clusters[j] = None
            combined = Cluster(a.groups + b.groups)
            clusters.append(combined)
            alive -= 1
            push_pairs(len(clusters) - 1)
            obs.count("cluster.merges")
            merged = True
            break
        if not merged:
            # Zero-affinity fallback: no sharing left anywhere; merge the
            # two smallest clusters (pure size packing).
            live = sorted(
                (idx for idx, c in enumerate(clusters) if c is not None),
                key=lambda idx: clusters[idx].size,
            )
            i, j = live[0], live[1]
            a, b = clusters[i], clusters[j]
            clusters[i] = None
            clusters[j] = None
            clusters.append(Cluster(a.groups + b.groups))
            alive -= 1
            push_pairs(len(clusters) - 1)
            obs.count("cluster.merges")
            obs.count("cluster.zero_affinity_merges")

    result = [c for c in clusters if c is not None]

    while len(result) < k:
        result.sort(key=lambda c: -c.size)
        big = result[0]
        if len(big.groups) >= 2:
            first, second = _split_cluster(big)
        else:
            group = big.groups[0] if big.groups else None
            if group is None or group.size < 2:
                # Nothing left to split: fewer iterations than clusters.
                # Pad with empty clusters — the surplus cores idle — so a
                # degenerate (but legal) tiny nest still maps.
                obs.count("cluster.idle_padding", k - len(result))
                result.extend(Cluster() for _ in range(k - len(result)))
                break
            left, right = group.split(group.size // 2)
            first, second = Cluster([left]), Cluster([right])
        obs.count("cluster.splits")
        result.remove(big)
        result.extend([first, second])

    return result


def _split_cluster(cluster: Cluster) -> tuple[Cluster, Cluster]:
    """Split a multi-group cluster into two size-balanced halves.

    Greedy first-fit-decreasing: largest groups first, each into the
    lighter half; keeps same-tag cohesion best-effort by seeding the halves
    with the two least-similar groups.
    """
    groups = sorted(cluster.groups, key=lambda g: (-g.size, g.ident))
    a, b = Cluster(), Cluster()
    for group in groups:
        target = a if a.size <= b.size else b
        target.add(group)
    return a, b


def hierarchical_distribute(
    groups: Sequence[IterationGroup],
    machine: Machine,
    threshold: float = 0.10,
    strategy: str = "greedy",
    backend: str = "auto",
) -> list[list[IterationGroup]]:
    """Figure 6 end to end: groups -> per-core group lists.

    Returns one list per core, indexed by core id (left-to-right order of
    the cache tree leaves).  ``strategy`` selects the per-level
    partitioner: ``"greedy"`` is the paper's dot-product merge; ``"kl"``
    additionally refines every two-way cut with Kernighan-Lin swaps
    (higher-fan-out levels always use the greedy merge).  ``backend``
    is forwarded to :func:`cluster_one_level`; it never changes the
    resulting distribution.
    """
    if not groups:
        raise MappingError("no iteration groups to distribute")
    if strategy not in ("greedy", "kl"):
        raise MappingError(f"unknown clustering strategy {strategy!r}")
    if not machine.is_level_uniform():
        return tree_distribute(groups, machine, threshold, strategy, backend)
    degrees = machine.clustering_degrees()
    with obs.span(
        "cluster.distribute",
        machine=machine.name,
        groups=len(groups),
        strategy=strategy,
        degrees=list(degrees),
    ):
        cluster_sets: list[list[IterationGroup]] = [list(groups)]
        for level, degree in enumerate(degrees):
            if degree == 1:
                continue  # pass-through level (e.g. private caches)
            with obs.span(
                "cluster.level", level=level, degree=degree, sets=len(cluster_sets)
            ):
                obs.count("cluster.levels")
                next_sets: list[list[IterationGroup]] = []
                for current in cluster_sets:
                    if strategy == "kl" and degree == 2 and len(current) >= 2:
                        from repro.mapping.kl import cluster_one_level_kl

                        clusters = cluster_one_level_kl(current, threshold)
                    else:
                        clusters = cluster_one_level(
                            current, degree, threshold, backend=backend
                        )
                    next_sets.extend([list(c.groups) for c in clusters])
                cluster_sets = next_sets
        if len(cluster_sets) != machine.num_cores:
            raise MappingError(
                f"descent produced {len(cluster_sets)} clusters for "
                f"{machine.num_cores} cores"
            )
        return cluster_sets


def tree_distribute(
    groups: Sequence[IterationGroup],
    machine: Machine,
    threshold: float = 0.10,
    strategy: str = "greedy",
    backend: str = "auto",
) -> list[list[IterationGroup]]:
    """Figure 6 generalized to non-level-uniform trees.

    Core loss prunes the tree asymmetrically, so the flat per-level
    descent of :func:`hierarchical_distribute` (which assumes one
    branching degree per level) no longer applies.  This variant walks
    the tree per *node*: at every node with several children, the
    node's groups are clustered into one cluster per child — sized
    equally when the children own equal core counts (the per-node
    decision then coincides with the flat descent's), proportionally to
    ``cores_below`` otherwise — and each cluster recurses into its
    child.  Leaves collect in left-to-right order, i.e. core-id order.
    """
    if not groups:
        raise MappingError("no iteration groups to distribute")
    if strategy not in ("greedy", "kl"):
        raise MappingError(f"unknown clustering strategy {strategy!r}")

    def descend(node: TopologyNode, current: list[IterationGroup]) -> list[list[IterationGroup]]:
        if node.kind == "core":
            return [current]
        children = node.children
        if len(children) == 1:
            return descend(children[0], current)
        obs.count("cluster.levels")
        weights = [len(child.cores_below()) for child in children]
        if len(set(weights)) == 1:
            if strategy == "kl" and len(children) == 2 and len(current) >= 2:
                from repro.mapping.kl import cluster_one_level_kl

                clusters = cluster_one_level_kl(current, threshold)
            else:
                clusters = cluster_one_level(current, len(children), threshold, backend=backend)
        else:
            clusters = cluster_weighted(current, weights, threshold, backend=backend)
        out: list[list[IterationGroup]] = []
        for child, cluster in zip(children, clusters):
            out.extend(descend(child, list(cluster.groups)))
        return out

    with obs.span(
        "cluster.distribute.tree",
        machine=machine.name,
        groups=len(groups),
        strategy=strategy,
    ):
        cluster_sets = descend(machine.root, list(groups))
        if len(cluster_sets) != machine.num_cores:
            raise MappingError(
                f"tree descent produced {len(cluster_sets)} clusters for "
                f"{machine.num_cores} cores"
            )
        return cluster_sets
