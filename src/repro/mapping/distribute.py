"""End-to-end cache topology aware mapping (the paper's main pass).

:class:`TopologyAwareMapper` chains the full pipeline of Section 3:

1. pick a data block size (Section 4.1 heuristic, or caller-supplied);
2. partition the data into blocks and tag the iterations (Section 3.3);
3. analyze loop-carried dependences and lift them to group granularity,
   applying the chosen dependence policy (Section 3.5.2);
4. hierarchically distribute the groups down the cache tree (Figure 6);
5. schedule each core's groups (Figure 7), either locality-aware
   (``local_scheduling=True``, Section 3.5.3) or dependence-only (the
   paper's plain "Topology Aware" configuration).

The result is a :class:`MappingResult` whose :meth:`MappingResult.plan`
is directly executable on the simulator.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro import obs
from repro.errors import MappingError
from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.groups import GroupSet, IterationGroup
from repro.blocks.tagger import choose_block_size, tag_iterations
from repro.ir.loops import LoopNest, Program
from repro.mapping.clustering import hierarchical_distribute
from repro.mapping.dependence import (
    GroupDependenceGraph,
    build_group_dependence_graph,
    merge_dependent_groups,
)
from repro.mapping.schedule import dependence_only_schedule, schedule_groups
from repro.topology.tree import Machine


@dataclass(frozen=True)
class ExecutablePlan:
    """A fully ordered execution plan: per core, per round, iterations.

    A barrier synchronizes all cores between consecutive rounds.  This is
    the common currency between every mapping scheme (TopologyAware, Base,
    Base+, Local) and the simulator.
    """

    machine: Machine
    nest: LoopNest
    rounds: tuple[tuple[tuple[tuple[int, ...], ...], ...], ...]
    label: str

    @property
    def num_rounds(self) -> int:
        return max((len(core_rounds) for core_rounds in self.rounds), default=0)

    def core_iterations(self, core: int) -> list[tuple[int, ...]]:
        return [p for rnd in self.rounds[core] for p in rnd]

    def total_iterations(self) -> int:
        return sum(len(rnd) for core_rounds in self.rounds for rnd in core_rounds)

    def verify_complete(self) -> None:
        """Every iteration of K exactly once across all cores."""
        seen: set[tuple[int, ...]] = set()
        for core_rounds in self.rounds:
            for rnd in core_rounds:
                for point in rnd:
                    if point in seen:
                        raise MappingError(f"iteration {point} scheduled twice")
                    seen.add(point)
        space = set(self.nest.iterations())
        if seen != space:
            raise MappingError(
                f"plan covers {len(seen)} iterations, space has {len(space)}"
            )

    @staticmethod
    def from_group_rounds(
        machine: Machine,
        nest: LoopNest,
        group_rounds: Sequence[Sequence[Sequence[IterationGroup]]],
        label: str,
    ) -> "ExecutablePlan":
        rounds = tuple(
            tuple(
                tuple(p for g in rnd for p in g.iterations) for rnd in core_rounds
            )
            for core_rounds in group_rounds
        )
        return ExecutablePlan(machine, nest, rounds, label)


@dataclass
class MappingResult:
    """Everything the mapper produced, with phase timings for A2."""

    machine: Machine
    nest: LoopNest
    partition: DataBlockPartition
    group_set: GroupSet
    graph: GroupDependenceGraph | None
    assignments: list[list[IterationGroup]]
    group_rounds: list[list[list[IterationGroup]]]
    label: str
    timings: dict[str, float] = field(default_factory=dict)

    def plan(self) -> ExecutablePlan:
        return ExecutablePlan.from_group_rounds(
            self.machine, self.nest, self.group_rounds, self.label
        )

    def assignment_sizes(self) -> list[int]:
        return [sum(g.size for g in groups) for groups in self.assignments]

    @property
    def compile_time(self) -> float:
        return sum(self.timings.values())


class TopologyAwareMapper:
    """The paper's compiler pass, parameterized like its evaluation.

    Parameters mirror Section 4.1: ``balance_threshold`` defaults to 10%,
    ``alpha``/``beta`` to 0.5 each, the block size to the Section 4.1
    heuristic (capped at the paper's 2KB default).  ``local_scheduling``
    turns on the Figure 7 locality-aware scheduler (the paper's
    "combined" configuration); off, groups are ordered honoring
    dependences only (the paper's plain "Topology Aware").
    ``dependence_policy`` selects between the two Section 3.5.2 options:
    ``"barrier"`` (schedule with inter-core synchronization) or
    ``"co-cluster"`` (merge dependent groups; no synchronization needed).
    """

    def __init__(
        self,
        machine: Machine,
        block_size: int | None = None,
        balance_threshold: float = 0.10,
        alpha: float = 0.5,
        beta: float = 0.5,
        local_scheduling: bool = False,
        dependence_policy: str = "barrier",
        max_groups: int | None = 50_000,
        refine: bool = True,
        cluster_strategy: str = "greedy",
    ):
        if dependence_policy not in ("barrier", "co-cluster"):
            raise MappingError(f"unknown dependence policy {dependence_policy!r}")
        if cluster_strategy not in ("greedy", "kl"):
            raise MappingError(f"unknown cluster strategy {cluster_strategy!r}")
        self.machine = machine
        self.block_size = block_size
        self.balance_threshold = balance_threshold
        self.alpha = alpha
        self.beta = beta
        self.local_scheduling = local_scheduling
        self.dependence_policy = dependence_policy
        self.max_groups = max_groups
        self.refine = refine
        self.cluster_strategy = cluster_strategy

    def map_program(self, program: Program) -> list[MappingResult]:
        """Map every nest of a program (each nest independently)."""
        return [self.map_nest(program, nest) for nest in program.nests]

    def map_nest(self, program: Program, nest: LoopNest) -> MappingResult:
        timings: dict[str, float] = {}
        map_span = obs.span(
            "map.nest",
            nest=nest.name,
            machine=self.machine.name,
            iterations=nest.iteration_count(),
        )
        with map_span as sp:
            t0 = time.perf_counter()
            with obs.span("map.partition"):
                block_size = self.block_size
                if block_size is None:
                    l1 = self.machine.cache_path(0)[0].spec.size_bytes
                    block_size = choose_block_size(program, nest, l1)
                arrays = [program.arrays[a.name] for a in nest.arrays()]
                partition = DataBlockPartition(arrays, block_size)
            timings["partition"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            with obs.span("map.tagging"):
                group_set = tag_iterations(nest, partition, max_groups=self.max_groups)
            timings["tagging"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            with obs.span("map.dependence", parallel=nest.parallel) as dep_span:
                groups: list[IterationGroup] = list(group_set.groups)
                graph: GroupDependenceGraph | None = None
                if not nest.parallel:
                    raw = build_group_dependence_graph(nest, groups)
                    if self.dependence_policy == "co-cluster":
                        merged = merge_dependent_groups(groups, raw)
                        obs.count("dependence.co_cluster_merges", len(groups) - len(merged))
                        groups = merged
                        graph = None
                    else:
                        groups, graph = raw.acyclified(groups)
                    dep_span.tag(
                        policy=self.dependence_policy,
                        edges=graph.num_edges if graph is not None else 0,
                    )
            timings["dependence"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            with obs.span("map.clustering"):
                assignments = hierarchical_distribute(
                    groups, self.machine, self.balance_threshold, self.cluster_strategy
                )
                if self.refine:
                    from repro.mapping.balance import Cluster, balance_clusters
                    from repro.mapping.refine import refine_assignment

                    # Refine against the topology objective inside a wider balance
                    # window, then re-tighten the balance (splitting groups where
                    # needed) so the final assignment honors the threshold.
                    with obs.span("map.refine"):
                        window = max(self.balance_threshold, 0.08)
                        assignments = refine_assignment(assignments, self.machine, window)
                        clusters = [Cluster(groups) for groups in assignments]
                        balance_clusters(clusters, self.balance_threshold)
                        assignments = [list(c.groups) for c in clusters]
            timings["clustering"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            with obs.span("map.scheduling", local=self.local_scheduling):
                if self.local_scheduling:
                    group_rounds = schedule_groups(
                        assignments, self.machine, graph, self.alpha, self.beta
                    )
                    if graph is None or graph.num_edges == 0:
                        # Dependence-free: the round structure only served the
                        # scheduler's horizontal pacing; execution needs no
                        # barriers, so flatten to one synchronization-free round
                        # (pacing survives through the balanced sizes).
                        group_rounds = [
                            [[g for rnd in core_rounds for g in rnd]]
                            for core_rounds in group_rounds
                        ]
                else:
                    group_rounds = dependence_only_schedule(
                        assignments, self.machine, graph
                    )
            timings["scheduling"] = time.perf_counter() - t0

            sp.tag(groups=len(group_set.groups), block_size=block_size)
            obs.count("map.nests_mapped")

        label = "topology-aware+sched" if self.local_scheduling else "topology-aware"
        return MappingResult(
            self.machine,
            nest,
            partition,
            group_set,
            graph,
            assignments,
            group_rounds,
            label,
            timings,
        )
