"""End-to-end cache topology aware mapping (the paper's main pass).

:class:`TopologyAwareMapper` runs the full pipeline of Section 3:

1. pick a data block size (Section 4.1 heuristic, or caller-supplied);
2. partition the data into blocks and tag the iterations (Section 3.3);
3. analyze loop-carried dependences and lift them to group granularity,
   applying the chosen dependence policy (Section 3.5.2);
4. hierarchically distribute the groups down the cache tree (Figure 6);
5. schedule each core's groups (Figure 7), either locality-aware
   (``local_scheduling=True``, Section 3.5.3) or dependence-only (the
   paper's plain "Topology Aware" configuration).

The chain itself lives in :mod:`repro.pipeline` — this class is the
stable front door, binding a machine and a knob set and delegating to a
:class:`~repro.pipeline.core.MappingPipeline`.  By default every call
computes from scratch (no artifact store), preserving one-shot CLI
semantics and honest compile-time measurements; pass ``store=`` to
share stage artifacts across calls the way the experiment harness, the
service engine and the autotuner do.

The result is a :class:`MappingResult` whose :meth:`MappingResult.plan`
is directly executable on the simulator.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import MappingError
from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.groups import GroupSet, IterationGroup
from repro.ir.loops import LoopNest, Program
from repro.mapping.dependence import GroupDependenceGraph
from repro.topology.tree import Machine


@dataclass(frozen=True)
class ExecutablePlan:
    """A fully ordered execution plan: per core, per round, iterations.

    A barrier synchronizes all cores between consecutive rounds.  This is
    the common currency between every mapping scheme (TopologyAware, Base,
    Base+, Local) and the simulator.
    """

    machine: Machine
    nest: LoopNest
    rounds: tuple[tuple[tuple[tuple[int, ...], ...], ...], ...]
    label: str

    @property
    def num_rounds(self) -> int:
        return max((len(core_rounds) for core_rounds in self.rounds), default=0)

    def core_iterations(self, core: int) -> list[tuple[int, ...]]:
        return [p for rnd in self.rounds[core] for p in rnd]

    def total_iterations(self) -> int:
        return sum(len(rnd) for core_rounds in self.rounds for rnd in core_rounds)

    def verify_complete(self) -> None:
        """Every iteration of K exactly once across all cores."""
        seen: set[tuple[int, ...]] = set()
        for core_rounds in self.rounds:
            for rnd in core_rounds:
                for point in rnd:
                    if point in seen:
                        raise MappingError(f"iteration {point} scheduled twice")
                    seen.add(point)
        space = set(self.nest.iterations())
        if seen != space:
            raise MappingError(
                f"plan covers {len(seen)} iterations, space has {len(space)}"
            )

    @staticmethod
    def from_group_rounds(
        machine: Machine,
        nest: LoopNest,
        group_rounds: Sequence[Sequence[Sequence[IterationGroup]]],
        label: str,
    ) -> "ExecutablePlan":
        rounds = tuple(
            tuple(
                tuple(p for g in rnd for p in g.iterations) for rnd in core_rounds
            )
            for core_rounds in group_rounds
        )
        return ExecutablePlan(machine, nest, rounds, label)


@dataclass
class MappingResult:
    """Everything the mapper produced, with phase timings for A2."""

    machine: Machine
    nest: LoopNest
    partition: DataBlockPartition
    group_set: GroupSet
    graph: GroupDependenceGraph | None
    assignments: list[list[IterationGroup]]
    group_rounds: list[list[list[IterationGroup]]]
    label: str
    timings: dict[str, float] = field(default_factory=dict)

    def plan(self) -> ExecutablePlan:
        return ExecutablePlan.from_group_rounds(
            self.machine, self.nest, self.group_rounds, self.label
        )

    def assignment_sizes(self) -> list[int]:
        return [sum(g.size for g in groups) for groups in self.assignments]

    @property
    def compile_time(self) -> float:
        return sum(self.timings.values())


class TopologyAwareMapper:
    """The paper's compiler pass, parameterized like its evaluation.

    Parameters mirror Section 4.1: ``balance_threshold`` defaults to 10%,
    ``alpha``/``beta`` to 0.5 each, the block size to the Section 4.1
    heuristic (capped at the paper's 2KB default).  ``local_scheduling``
    turns on the Figure 7 locality-aware scheduler (the paper's
    "combined" configuration); off, groups are ordered honoring
    dependences only (the paper's plain "Topology Aware").
    ``dependence_policy`` selects between the two Section 3.5.2 options:
    ``"barrier"`` (schedule with inter-core synchronization) or
    ``"co-cluster"`` (merge dependent groups; no synchronization needed).
    ``store`` (optional) is a :class:`~repro.pipeline.store.ArtifactStore`
    shared across calls for per-stage reuse; without one, every call
    computes the full chain.
    """

    def __init__(
        self,
        machine: Machine,
        block_size: int | None = None,
        balance_threshold: float = 0.10,
        alpha: float = 0.5,
        beta: float = 0.5,
        local_scheduling: bool = False,
        dependence_policy: str = "barrier",
        max_groups: int | None = 50_000,
        refine: bool = True,
        cluster_strategy: str = "greedy",
        store=None,
    ):
        from repro.pipeline.knobs import Knobs

        knobs = Knobs(
            block_size=block_size,
            balance_threshold=balance_threshold,
            alpha=alpha,
            beta=beta,
            local_scheduling=local_scheduling,
            dependence_policy=dependence_policy,
            cluster_strategy=cluster_strategy,
            max_groups=max_groups,
            refine=refine,
        )
        self.machine = machine
        self.knobs = knobs
        self.block_size = block_size
        self.balance_threshold = balance_threshold
        self.alpha = alpha
        self.beta = beta
        self.local_scheduling = local_scheduling
        self.dependence_policy = dependence_policy
        self.max_groups = max_groups
        self.refine = refine
        self.cluster_strategy = cluster_strategy
        self.store = store

    def _pipeline(self):
        from repro.pipeline.core import MappingPipeline

        return MappingPipeline(self.machine, self.knobs, store=self.store)

    def map_program(self, program: Program) -> list[MappingResult]:
        """Map every nest of a program (each nest independently)."""
        return self._pipeline().map_program(program)

    def map_nest(self, program: Program, nest: LoopNest) -> MappingResult:
        return self._pipeline().map_nest(program, nest)
