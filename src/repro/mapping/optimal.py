"""Reference (near-)optimal mappings — the paper's ILP stand-in.

Figure 20 compares the heuristic against an optimal iteration-group-to-
core mapping obtained with integer linear programming ("which took up to
23 hours in some cases").  We substitute a search with the same role:

* :func:`exhaustive_assignment` — exact enumeration with symmetry pruning
  for small instances (``cores ** groups`` capped);
* :func:`anneal_assignment` — simulated annealing over group moves/swaps
  for everything else, seeded deterministically and started from the
  heuristic's own solution so it can only improve on it.

Both optimize :func:`sharing_cost`, a cache-tree proxy objective: for
every cache component, the number of distinct data blocks its cores touch,
weighted by the component's latency, plus a load-imbalance penalty.
Fewer distinct blocks under a shared cache means more sharing and less
replication — precisely what the paper's ILP encodes.  Experiments may
also pass an ``evaluate`` callable (e.g. full simulation) for final
ranking of the shortlist.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence

from repro.errors import MappingError
from repro.blocks.groups import IterationGroup
from repro.blocks.tags import bitwise_sum, ones
from repro.topology.tree import Machine

Assignment = list[list[IterationGroup]]


def sharing_cost(assignments: Sequence[Sequence[IterationGroup]], machine: Machine) -> float:
    """Latency-weighted distinct-block count over the cache tree.

    Lower is better.  An imbalance penalty (range of per-core iteration
    counts, scaled) keeps the search from piling everything on one core.
    """
    core_tags = [bitwise_sum(*(g.tag for g in groups)) if groups else 0 for groups in assignments]
    core_sizes = [sum(g.size for g in groups) for groups in assignments]
    cost = 0.0
    for node in machine.cache_nodes():
        below = node.cores_below()
        tag = 0
        for core in below:
            tag |= core_tags[core]
        cost += node.spec.latency * ones(tag)
    if core_sizes:
        total = sum(core_sizes) or 1
        imbalance = (max(core_sizes) - min(core_sizes)) / total
        cost *= 1.0 + 2.0 * imbalance
    return cost


def exhaustive_assignment(
    groups: Sequence[IterationGroup],
    machine: Machine,
    cost: Callable[[Sequence[Sequence[IterationGroup]], Machine], float] = sharing_cost,
    max_states: int = 2_000_000,
) -> Assignment:
    """Exact minimum-cost assignment by enumeration (small instances only)."""
    n_cores = machine.num_cores
    n_groups = len(groups)
    states = n_cores**n_groups
    if states > max_states:
        raise MappingError(
            f"{states} assignments exceed the exhaustive cap {max_states}; "
            "use anneal_assignment"
        )
    best_cost = float("inf")
    best: Assignment | None = None
    current: Assignment = [[] for _ in range(n_cores)]

    def rec(index: int) -> None:
        nonlocal best_cost, best
        if index == n_groups:
            value = cost(current, machine)
            if value < best_cost:
                best_cost = value
                best = [list(groups_) for groups_ in current]
            return
        # No symmetry pruning: cores are NOT interchangeable (their position
        # in the cache tree matters), so we enumerate fully; the cap above
        # keeps this to small instances.
        for core in range(n_cores):
            current[core].append(groups[index])
            rec(index + 1)
            current[core].pop()

    rec(0)
    if best is None:
        raise MappingError("no assignment found")  # pragma: no cover
    return best


def anneal_assignment(
    groups: Sequence[IterationGroup],
    machine: Machine,
    cost: Callable[[Sequence[Sequence[IterationGroup]], Machine], float] = sharing_cost,
    start: Assignment | None = None,
    iterations: int = 4000,
    seed: int = 20100605,  # PLDI 2010, June 5
    initial_temperature: float | None = None,
) -> Assignment:
    """Simulated annealing over move/swap neighborhood.

    Starting from ``start`` (default: round-robin), so passing the
    heuristic's own assignment guarantees the result is no worse under
    ``cost``.
    """
    rng = random.Random(seed)
    n_cores = machine.num_cores
    if start is not None:
        state: Assignment = [list(g) for g in start]
        if len(state) != n_cores:
            raise MappingError("start assignment has wrong core count")
    else:
        state = [[] for _ in range(n_cores)]
        for index, group in enumerate(groups):
            state[index % n_cores].append(group)

    best = [list(g) for g in state]
    current_cost = cost(state, machine)
    best_cost = current_cost
    temperature = initial_temperature if initial_temperature is not None else max(current_cost * 0.05, 1.0)
    cooling = 0.995

    for _ in range(iterations):
        donor = rng.randrange(n_cores)
        if not state[donor]:
            continue
        recipient = rng.randrange(n_cores)
        if recipient == donor:
            continue
        g_index = rng.randrange(len(state[donor]))
        if state[recipient] and rng.random() < 0.5:
            #

            h_index = rng.randrange(len(state[recipient]))
            state[donor][g_index], state[recipient][h_index] = (
                state[recipient][h_index],
                state[donor][g_index],
            )
            undo = ("swap", donor, g_index, recipient, h_index)
        else:
            group = state[donor].pop(g_index)
            state[recipient].append(group)
            undo = ("move", donor, g_index, recipient, len(state[recipient]) - 1)

        new_cost = cost(state, machine)
        delta = new_cost - current_cost
        if delta <= 0 or rng.random() < pow(2.718281828, -delta / max(temperature, 1e-9)):
            current_cost = new_cost
            if new_cost < best_cost:
                best_cost = new_cost
                best = [list(g) for g in state]
        else:
            kind, d, gi, r, hi = undo
            if kind == "swap":
                state[d][gi], state[r][hi] = state[r][hi], state[d][gi]
            else:
                group = state[r].pop(hi)
                state[d].insert(gi, group)
        temperature *= cooling

    return best


def optimal_assignment(
    groups: Sequence[IterationGroup],
    machine: Machine,
    cost: Callable[[Sequence[Sequence[IterationGroup]], Machine], float] = sharing_cost,
    start: Assignment | None = None,
    exhaustive_cap: int = 200_000,
    anneal_iterations: int = 4000,
) -> Assignment:
    """Best-effort optimal mapping: exhaustive when feasible, else annealing."""
    if machine.num_cores ** len(groups) <= exhaustive_cap:
        return exhaustive_assignment(groups, machine, cost, exhaustive_cap)
    return anneal_assignment(
        groups, machine, cost, start=start, iterations=anneal_iterations
    )
