"""Greedy load balancing of iteration-group clusters (Figure 6, lower box).

Given the clusters formed at one level of the hierarchy, equalize their
iteration counts to within the tunable balance threshold: repeatedly evict
an iteration group from an oversized cluster into an undersized one,
choosing the group whose tag has the largest dot product with the
recipient's tag; when no whole group fits the limits, split one (same-tag
sub-groups) so the sizes land inside the window.
"""

from __future__ import annotations

from repro import obs
from repro.errors import MappingError
from repro.blocks.groups import IterationGroup
from repro.blocks.tags import bitwise_sum, dot


class Cluster:
    """A mutable bag of iteration groups with cached tag and size."""

    __slots__ = ("groups", "tag", "size")

    def __init__(self, groups: list[IterationGroup] | None = None):
        self.groups: list[IterationGroup] = list(groups or [])
        self.tag = bitwise_sum(*(g.tag for g in self.groups))
        self.size = sum(g.size for g in self.groups)

    def add(self, group: IterationGroup) -> None:
        self.groups.append(group)
        self.tag |= group.tag
        self.size += group.size

    def remove(self, group: IterationGroup) -> None:
        self.groups.remove(group)
        self.size -= group.size
        self.tag = bitwise_sum(*(g.tag for g in self.groups))

    def __repr__(self) -> str:
        return f"Cluster({len(self.groups)} groups, {self.size} iters)"


def balance_limits(total: int, k: int, threshold: float) -> tuple[float, float]:
    """(LowLimit, UpLimit) around the per-cluster average."""
    if k <= 0:
        raise MappingError("cluster count must be positive")
    if not 0 <= threshold < 1:
        raise MappingError(f"balance threshold must be in [0, 1), got {threshold}")
    avg = total / k
    return avg * (1 - threshold), avg * (1 + threshold)


def balance_clusters(clusters: list[Cluster], threshold: float) -> None:
    """Equalize cluster sizes in place to within ``threshold``.

    Follows the paper's greedy scheme: evict from the largest cluster to a
    below-LowLimit one (falling back to the smallest), preferring the
    group maximizing the dot product with the recipient; split a group
    when no whole group keeps both clusters inside the window.  The split
    fallback guarantees termination: each pass strictly shrinks the
    largest cluster until it is within UpLimit.
    """
    k = len(clusters)
    if k <= 1:
        return
    total = sum(c.size for c in clusters)
    low, up = balance_limits(total, k, threshold)

    guard = 0
    max_steps = 4 * k + 4 * sum(len(c.groups) for c in clusters) + 64
    with obs.span("balance", clusters=k, total=total, threshold=threshold) as sp:
        moves = splits = forced = 0
        while True:
            donor = max(clusters, key=lambda c: c.size)
            # Integer sizes vs. a fractional window: stop within one iteration
            # of the limit, otherwise 1-iteration moves can oscillate forever.
            if donor.size < up + 1:
                break
            guard += 1
            if guard > max_steps:
                raise MappingError("load balancing failed to converge")  # pragma: no cover
            under = [c for c in clusters if c.size < low]
            recipient = min(under or [c for c in clusters if c is not donor], key=lambda c: c.size)

            # A whole-group move is eligible when both ends stay in the window.
            eligible = [
                g
                for g in donor.groups
                if donor.size - g.size >= low and recipient.size + g.size <= up
            ]
            if eligible:
                best = max(eligible, key=lambda g: (dot(g.tag, recipient.tag), g.size, -g.ident))
                donor.remove(best)
                recipient.add(best)
                moves += 1
                continue

            # Split: carve exactly enough iterations to pull the donor to the
            # average (and never overfill the recipient).
            need = min(int(donor.size - (low + up) / 2), int(up - recipient.size))
            need = max(1, need)
            candidates = [g for g in donor.groups if g.size > 1]
            if not candidates:
                # All groups are single iterations but none was eligible:
                # force-move the best single iteration group.
                best = max(donor.groups, key=lambda g: (dot(g.tag, recipient.tag), -g.ident))
                donor.remove(best)
                recipient.add(best)
                forced += 1
                continue
            victim = max(candidates, key=lambda g: (dot(g.tag, recipient.tag), g.size, -g.ident))
            cut = min(need, victim.size - 1)
            moved, kept = victim.split(cut)
            donor.remove(victim)
            donor.add(kept)
            recipient.add(moved)
            splits += 1
        sp.tag(moves=moves, splits=splits, forced=forced)
        obs.count("balance.moves", moves)
        obs.count("balance.splits", splits)
        obs.count("balance.forced_moves", forced)


def balance_to_targets(clusters: list[Cluster], targets: list[float], threshold: float) -> None:
    """Equalize cluster sizes in place toward per-cluster ``targets``.

    The weighted variant of :func:`balance_clusters`, used when the
    cache tree is not level-uniform (e.g. after core loss) and sibling
    subtrees own different core counts: each cluster's window is
    ``target * (1 +- threshold)`` instead of a common average.  The
    move/split/forced scheme — and its termination argument — is the
    same: every pass strictly shrinks the most-over-window donor.
    """
    k = len(clusters)
    if k != len(targets):
        raise MappingError(f"{k} clusters but {len(targets)} targets")
    if k <= 1:
        return
    if not 0 <= threshold < 1:
        raise MappingError(f"balance threshold must be in [0, 1), got {threshold}")
    total = sum(c.size for c in clusters)
    if any(t <= 0 for t in targets):
        raise MappingError("balance targets must be positive")
    scale = total / sum(targets)
    limits = [(t * scale * (1 - threshold), t * scale * (1 + threshold)) for t in targets]

    guard = 0
    max_steps = 4 * k + 4 * sum(len(c.groups) for c in clusters) + 64
    with obs.span("balance.targets", clusters=k, total=total, threshold=threshold) as sp:
        moves = splits = forced = 0
        while True:
            di = max(range(k), key=lambda i: clusters[i].size - limits[i][1])
            donor = clusters[di]
            low_d, up_d = limits[di]
            if donor.size < up_d + 1:
                break
            guard += 1
            if guard > max_steps:
                raise MappingError("weighted balancing failed to converge")  # pragma: no cover
            under = [i for i in range(k) if clusters[i].size < limits[i][0]]
            pool = under or [i for i in range(k) if i != di]
            ri = min(pool, key=lambda i: (clusters[i].size - limits[i][0], i))
            recipient = clusters[ri]
            low_r, up_r = limits[ri]

            eligible = [
                g
                for g in donor.groups
                if donor.size - g.size >= low_d and recipient.size + g.size <= up_r
            ]
            if eligible:
                best = max(eligible, key=lambda g: (dot(g.tag, recipient.tag), g.size, -g.ident))
                donor.remove(best)
                recipient.add(best)
                moves += 1
                continue

            need = min(int(donor.size - (low_d + up_d) / 2), int(up_r - recipient.size))
            need = max(1, need)
            candidates = [g for g in donor.groups if g.size > 1]
            if not candidates:
                best = max(donor.groups, key=lambda g: (dot(g.tag, recipient.tag), -g.ident))
                donor.remove(best)
                recipient.add(best)
                forced += 1
                continue
            victim = max(candidates, key=lambda g: (dot(g.tag, recipient.tag), g.size, -g.ident))
            cut = min(need, victim.size - 1)
            moved, kept = victim.split(cut)
            donor.remove(victim)
            donor.add(kept)
            recipient.add(moved)
            splits += 1
        sp.tag(moves=moves, splits=splits, forced=forced)
        obs.count("balance.moves", moves)
        obs.count("balance.splits", splits)
        obs.count("balance.forced_moves", forced)


def verify_balance(clusters: list[Cluster], threshold: float, slack: float = 0.0) -> bool:
    """True when every cluster is within the (threshold + slack) window.

    ``slack`` absorbs the +-1 iteration quantization of group splitting.
    """
    total = sum(c.size for c in clusters)
    low, up = balance_limits(total, len(clusters), threshold)
    return all(low - slack - 1 <= c.size <= up + slack + 1 for c in clusters)
