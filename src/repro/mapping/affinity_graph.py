"""The iteration-group affinity graph (Figure 6, "BuildGraph").

Nodes are iteration groups; the edge between two groups weighs the number
of common 1 bits between their tags — the degree of data-block sharing
("sort of affinity") between the groups' iterations.  The graph is dense
by construction (any two groups sharing at least one block are adjacent),
so we store it as a node list plus an on-demand weight function, with an
adjacency materialization for callers that want to walk edges.

With the numpy backend (see :mod:`repro.kernels`) the full G x G weight
table is computed once — popcounts of ANDed ``uint64`` lanes — and every
query reads from it; the scalar backend evaluates big-int dots on demand.
Both produce the same exact integers.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro import obs
from repro.blocks.groups import IterationGroup
from repro.blocks.tags import dot
from repro.kernels import fits_lane_budget, note_fallback, resolve_backend


class AffinityGraph:
    """Weighted data-sharing graph over iteration groups."""

    __slots__ = ("groups", "_by_ident", "_index", "_backend", "_table")

    def __init__(self, groups: Sequence[IterationGroup], backend: str = "auto"):
        self.groups = tuple(groups)
        self._by_ident = {g.ident: g for g in self.groups}
        self._index = {g.ident: i for i, g in enumerate(self.groups)}
        self._backend = resolve_backend(backend)
        self._table: list[list[int]] | None = None

    def _weight_table(self) -> list[list[int]] | None:
        """The cached G x G dot table, or ``None`` on the scalar path."""
        if self._table is not None:
            return self._table
        if self._backend != "numpy" or not self.groups:
            return None
        num_bits = max(g.tag.bit_length() for g in self.groups)
        if not fits_lane_budget(num_bits):
            note_fallback("lane-budget", "affinity_graph")
            return None
        from repro.kernels.affinity import dot_matrix
        from repro.kernels.lanes import lanes_for_bits, pack_tags

        with obs.span("affinity.weight_table", groups=len(self.groups)):
            packed = pack_tags([g.tag for g in self.groups], lanes_for_bits(num_bits))
            self._table = dot_matrix(packed).tolist()
            obs.count("affinity.tables_built")
        return self._table

    def weight(self, a: IterationGroup, b: IterationGroup) -> int:
        """Number of data blocks shared by the two groups' tags."""
        table = self._weight_table()
        if table is not None:
            i = self._index.get(a.ident)
            j = self._index.get(b.ident)
            if i is not None and j is not None:
                return table[i][j]
        return dot(a.tag, b.tag)

    def edges(self, min_weight: int = 1) -> Iterator[tuple[IterationGroup, IterationGroup, int]]:
        """All unordered pairs with weight >= ``min_weight``."""
        table = self._weight_table()
        if table is not None:
            for i, a in enumerate(self.groups):
                row = table[i]
                for j in range(i + 1, len(self.groups)):
                    w = row[j]
                    if w >= min_weight:
                        yield a, self.groups[j], w
            return
        for i, a in enumerate(self.groups):
            for b in self.groups[i + 1 :]:
                w = dot(a.tag, b.tag)
                if w >= min_weight:
                    yield a, b, w

    def neighbors(self, group: IterationGroup, min_weight: int = 1) -> list[tuple[IterationGroup, int]]:
        table = self._weight_table()
        row = None
        if table is not None:
            i = self._index.get(group.ident)
            if i is not None:
                row = table[i]
        out = []
        for j, other in enumerate(self.groups):
            if other.ident == group.ident:
                continue
            w = row[j] if row is not None else dot(group.tag, other.tag)
            if w >= min_weight:
                out.append((other, w))
        return out

    def total_sharing(self) -> int:
        """Sum of all edge weights — a scalar sharing density measure."""
        return sum(w for _, _, w in self.edges())

    def __len__(self) -> int:
        return len(self.groups)

    def __repr__(self) -> str:
        return f"AffinityGraph({len(self.groups)} groups)"
