"""The iteration-group affinity graph (Figure 6, "BuildGraph").

Nodes are iteration groups; the edge between two groups weighs the number
of common 1 bits between their tags — the degree of data-block sharing
("sort of affinity") between the groups' iterations.  The graph is dense
by construction (any two groups sharing at least one block are adjacent),
so we store it as a node list plus an on-demand weight function, with an
adjacency materialization for callers that want to walk edges.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.blocks.groups import IterationGroup
from repro.blocks.tags import dot


class AffinityGraph:
    """Weighted data-sharing graph over iteration groups."""

    __slots__ = ("groups", "_by_ident")

    def __init__(self, groups: Sequence[IterationGroup]):
        self.groups = tuple(groups)
        self._by_ident = {g.ident: g for g in self.groups}

    def weight(self, a: IterationGroup, b: IterationGroup) -> int:
        """Number of data blocks shared by the two groups' tags."""
        return dot(a.tag, b.tag)

    def edges(self, min_weight: int = 1) -> Iterator[tuple[IterationGroup, IterationGroup, int]]:
        """All unordered pairs with weight >= ``min_weight``."""
        for i, a in enumerate(self.groups):
            for b in self.groups[i + 1 :]:
                w = dot(a.tag, b.tag)
                if w >= min_weight:
                    yield a, b, w

    def neighbors(self, group: IterationGroup, min_weight: int = 1) -> list[tuple[IterationGroup, int]]:
        out = []
        for other in self.groups:
            if other.ident == group.ident:
                continue
            w = dot(group.tag, other.tag)
            if w >= min_weight:
                out.append((other, w))
        return out

    def total_sharing(self) -> int:
        """Sum of all edge weights — a scalar sharing density measure."""
        return sum(w for _, _, w in self.edges())

    def __len__(self) -> int:
        return len(self.groups)

    def __repr__(self) -> str:
        return f"AffinityGraph({len(self.groups)} groups)"
