"""The paper's core contribution: cache topology aware mapping.

* :mod:`repro.mapping.affinity_graph` — the weighted graph over iteration
  groups (edge weight = common 1 bits between tags, Figure 6 "BuildGraph");
* :mod:`repro.mapping.clustering` — hierarchical descent of the cache
  hierarchy tree with dot-product merging (Figure 6);
* :mod:`repro.mapping.balance` — the greedy load-balancing step with the
  tunable balance threshold;
* :mod:`repro.mapping.dependence` — the iteration-group dependence graph
  and its acyclification (Section 3.5.2);
* :mod:`repro.mapping.schedule` — dependence-aware local scheduling with
  the α (horizontal / shared cache) and β (vertical / L1) reuse weights
  (Figure 7, Section 3.5.3);
* :mod:`repro.mapping.distribute` — :class:`TopologyAwareMapper`, the
  end-to-end pass;
* :mod:`repro.mapping.baselines` — Base, Base+ and Local (Section 4.1);
* :mod:`repro.mapping.optimal` — reference near-optimal mappings
  (the paper's ILP stand-in, Figure 20).
"""

from repro.mapping.affinity_graph import AffinityGraph
from repro.mapping.clustering import hierarchical_distribute
from repro.mapping.dependence import GroupDependenceGraph, build_group_dependence_graph
from repro.mapping.schedule import schedule_groups
from repro.mapping.distribute import ExecutablePlan, MappingResult, TopologyAwareMapper
from repro.mapping.baselines import base_plan, base_plus_plan, local_plan

__all__ = [
    "AffinityGraph",
    "hierarchical_distribute",
    "GroupDependenceGraph",
    "build_group_dependence_graph",
    "schedule_groups",
    "ExecutablePlan",
    "MappingResult",
    "TopologyAwareMapper",
    "base_plan",
    "base_plus_plan",
    "local_plan",
]
