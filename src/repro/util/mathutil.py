"""Integer arithmetic helpers used by the polyhedral substrate."""

from __future__ import annotations

import math
from collections.abc import Iterable


def floor_div(a: int, b: int) -> int:
    """Floor division that is explicit about intent (``a // b`` with b != 0)."""
    if b == 0:
        raise ZeroDivisionError("floor_div by zero")
    return a // b


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for integers of any sign.

    >>> ceil_div(7, 2), ceil_div(-7, 2)
    (4, -3)
    """
    if b == 0:
        raise ZeroDivisionError("ceil_div by zero")
    return -((-a) // b)


def sign(x: int) -> int:
    """-1, 0 or 1 according to the sign of ``x``."""
    if x > 0:
        return 1
    if x < 0:
        return -1
    return 0


def gcd_list(values: Iterable[int]) -> int:
    """GCD of an iterable (0 for an empty iterable)."""
    acc = 0
    for value in values:
        acc = math.gcd(acc, value)
    return acc


def lcm_list(values: Iterable[int]) -> int:
    """LCM of an iterable (1 for an empty iterable)."""
    acc = 1
    for value in values:
        if value == 0:
            return 0
        acc = acc * value // math.gcd(acc, value)
    return abs(acc)
