"""Plain-text table rendering for experiment reports.

The benchmark harness prints paper-style tables (Table 1, Table 2, and one
row block per figure).  We keep the renderer dependency-free so reports can
be produced anywhere the library runs.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    align: str | Sequence[str] | None = None,
) -> str:
    """Render a monospace table.

    ``align`` is either a single character applied to all columns or one
    character per column: ``'l'`` (left), ``'r'`` (right), ``'c'`` (center).
    Numeric-looking cells default to right alignment, everything else left.
    """
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    ncols = len(headers)
    for row in str_rows:
        if len(row) != ncols:
            raise ValueError(f"row has {len(row)} cells, expected {ncols}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    if align is None:
        aligns = []
        for j in range(ncols):
            column = [row[j] for row in str_rows]
            numeric = column and all(_looks_numeric(c) for c in column)
            aligns.append("r" if numeric else "l")
    elif isinstance(align, str) and len(align) == 1:
        aligns = [align] * ncols
    else:
        aligns = list(align)
        if len(aligns) != ncols:
            raise ValueError("align must give one spec per column")

    def pad(cell: str, width: int, how: str) -> str:
        if how == "r":
            return cell.rjust(width)
        if how == "c":
            return cell.center(width)
        return cell.ljust(width)

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(pad(h, widths[j], "c") for j, h in enumerate(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(pad(cell, widths[j], aligns[j]) for j, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def _looks_numeric(cell: str) -> bool:
    try:
        float(cell.rstrip("%x"))
        return True
    except ValueError:
        return False
