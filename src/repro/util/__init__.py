"""Small shared helpers used across the library."""

from repro.util.bitset import (
    bit_count,
    bits_of,
    dot_product,
    from_indices,
    hamming_distance,
    to_bitstring,
)
from repro.util.mathutil import ceil_div, floor_div, gcd_list, lcm_list, sign
from repro.util.tables import format_table

__all__ = [
    "bit_count",
    "bits_of",
    "dot_product",
    "from_indices",
    "hamming_distance",
    "to_bitstring",
    "ceil_div",
    "floor_div",
    "gcd_list",
    "lcm_list",
    "sign",
    "format_table",
]
