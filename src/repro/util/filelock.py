"""Advisory cross-process file locks for the shared disk tiers.

The sharded service runs N worker processes over one cache directory, so
the write-through stores (:mod:`repro.pipeline.persist`,
:mod:`repro.service.mapcache`) need mutual exclusion around their
read-merge-replace cycles.  :class:`FileLock` wraps ``fcntl.flock`` on an
adjacent ``*.lock`` file — the lock file is never deleted, so there is no
unlink race, and the kernel drops the lock automatically if the holder is
SIGKILLed (which is exactly the fault-injection scenario the service
tests exercise: a killed worker must never leave the store wedged).

On platforms without :mod:`fcntl` the lock degrades to ``O_EXCL``
create-spin with stale-lock breaking; single-host POSIX is the supported
deployment, the fallback only keeps imports working elsewhere.
"""

from __future__ import annotations

import os
import time

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


class LockTimeout(OSError):
    """The lock could not be acquired within the caller's timeout."""


class FileLock:
    """An exclusive advisory lock on ``path`` (a dedicated lock file).

    Usage::

        with FileLock(store_path + ".lock"):
            ...read-merge-replace...

    ``blocking=False`` turns :meth:`acquire` into a single attempt that
    returns ``False`` instead of waiting — that is how single-writer
    compaction elects its writer (losers simply skip).
    """

    #: Poll interval for the non-fcntl fallback and timed fcntl waits.
    _POLL_S = 0.01

    def __init__(self, path: str, timeout: float = 30.0):
        self.path = path
        self.timeout = timeout
        self._fd: int | None = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self, blocking: bool = True) -> bool:
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path!r} is already held")
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        if fcntl is not None:
            return self._acquire_flock(blocking)
        return self._acquire_excl(blocking)  # pragma: no cover - non-POSIX

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        else:  # pragma: no cover - non-POSIX
            os.close(fd)
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __enter__(self) -> "FileLock":
        if not self.acquire(blocking=True):
            raise LockTimeout(f"could not lock {self.path!r}")
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    # -- implementations -------------------------------------------------
    def _acquire_flock(self, blocking: bool) -> bool:
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                if not blocking or time.monotonic() >= deadline:
                    os.close(fd)
                    if blocking:
                        raise LockTimeout(
                            f"lock {self.path!r} not acquired within "
                            f"{self.timeout:.1f}s"
                        ) from None
                    return False
                time.sleep(self._POLL_S)
            else:
                self._fd = fd
                return True

    def _acquire_excl(self, blocking: bool) -> bool:  # pragma: no cover
        deadline = time.monotonic() + self.timeout
        stale_after = max(self.timeout, 60.0)
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644)
            except FileExistsError:
                try:
                    age = time.time() - os.stat(self.path).st_mtime
                    if age > stale_after:
                        os.unlink(self.path)
                        continue
                except OSError:
                    continue
                if not blocking or time.monotonic() >= deadline:
                    if blocking:
                        raise LockTimeout(
                            f"lock {self.path!r} not acquired within "
                            f"{self.timeout:.1f}s"
                        ) from None
                    return False
                time.sleep(self._POLL_S)
            else:
                self._fd = fd
                return True
