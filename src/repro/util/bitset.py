"""Bitset helpers for iteration-group tags.

A *tag* in the paper is a bit vector d0 d1 ... d(n-1) recording which data
blocks an iteration group touches.  We represent tags as plain Python
integers: bit ``j`` set means block ``j`` is accessed.  Python integers are
arbitrary precision, so the number of data blocks is unbounded, and the tag
operations the algorithms need (dot product, bitwise sum, Hamming distance)
are single machine operations.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


def from_indices(indices: Iterable[int]) -> int:
    """Build a bitset with the given bit positions set.

    >>> bin(from_indices([0, 3]))
    '0b1001'
    """
    acc = 0
    for index in indices:
        if index < 0:
            raise ValueError(f"bit index must be non-negative, got {index}")
        acc |= 1 << index
    return acc


def bits_of(bitset: int) -> Iterator[int]:
    """Yield the set bit positions of ``bitset`` in increasing order."""
    if bitset < 0:
        raise ValueError("bitsets are non-negative integers")
    position = 0
    while bitset:
        if bitset & 1:
            yield position
        bitset >>= 1
        position += 1


def bit_count(bitset: int) -> int:
    """Number of set bits (popcount)."""
    if bitset < 0:
        raise ValueError("bitsets are non-negative integers")
    return bitset.bit_count()


def dot_product(a: int, b: int) -> int:
    """Tag dot product: the number of data blocks shared by two tags.

    The paper uses this as the qualitative measure of affinity between
    iteration groups / clusters (Figure 6).
    """
    return bit_count(a & b)


def hamming_distance(a: int, b: int) -> int:
    """Number of bit positions at which two tags differ."""
    return bit_count(a ^ b)


def to_bitstring(bitset: int, width: int) -> str:
    """Render a tag the way the paper writes it: d0 first.

    >>> to_bitstring(from_indices([0, 1]), 4)
    '1100'
    """
    if width < bitset.bit_length():
        raise ValueError(f"width {width} too small for bitset with {bitset.bit_length()} bits")
    return "".join("1" if bitset >> j & 1 else "0" for j in range(width))
