"""Exception taxonomy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
Subsystems raise more specific subclasses; the class names mirror the
package layout (``poly`` -> :class:`PolyhedralError`, ``lang`` ->
:class:`FrontendError`, and so on).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class PolyhedralError(ReproError):
    """Errors from the polyhedral substrate (``repro.poly``)."""


class EmptySetError(PolyhedralError):
    """An operation required a non-empty integer set but got an empty one."""


class UnboundedSetError(PolyhedralError):
    """Enumeration or code generation was requested for an unbounded set."""


class FrontendError(ReproError):
    """Base class for frontend (``repro.lang``) errors."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}" + (f", col {column}" if column is not None else "") + f": {message}"
        super().__init__(message)


class LexError(FrontendError):
    """A character sequence could not be tokenized."""


class ParseError(FrontendError):
    """The token stream does not form a valid program."""


class SemanticError(FrontendError):
    """The program parsed but violates a static-semantics rule.

    Examples: use of an undeclared array, a non-affine subscript
    expression, or a loop bound referencing an inner loop variable.
    """


class IRError(ReproError):
    """Errors constructing or manipulating the loop-nest IR."""


class DependenceError(IRError):
    """Dependence analysis was asked something it cannot answer."""


class TopologyError(ReproError):
    """Malformed cache hierarchy descriptions (``repro.topology``)."""


class UnknownMachineError(TopologyError):
    """A machine name/spec did not resolve to any builtin or zoo machine.

    ``known`` lists every name that would have worked, so CLIs can print
    the menu and exit with a usage error instead of a generic failure.
    """

    def __init__(self, spec: str, known: list[str]):
        self.spec = spec
        self.known = list(known)
        super().__init__(
            f"unknown machine {spec!r}; known: {', '.join(self.known)} "
            f"(also sysfs:<path> and lscpu:<path>)"
        )


class BlockingError(ReproError):
    """Errors in data-block partitioning or iteration tagging."""


class KernelError(ReproError):
    """Errors from the vectorized kernel layer (``repro.kernels``):
    unknown backend names, a requested backend that is unavailable, or
    tags that do not fit the requested lane budget."""


class MappingError(ReproError):
    """Errors from the distribution/scheduling algorithms (``repro.mapping``)."""


class ScheduleError(MappingError):
    """A legal schedule could not be constructed (e.g. dependence cycle
    spanning cores that the cycle-merging pass failed to collapse)."""


class TransformError(ReproError):
    """A loop transformation (``repro.transforms``) is illegal or
    inapplicable to the given nest."""


class SimulationError(ReproError):
    """Errors from the multicore cache simulator (``repro.sim``)."""


class RemapError(ReproError):
    """Errors from the online incremental remapper (``repro.remap``):
    malformed events, a core-loss event naming unknown or already-dead
    cores, or a hot-plug for cores that never went away."""


class WorkloadError(ReproError):
    """An unknown workload was requested or a workload failed to build."""


class UnknownWorkloadError(WorkloadError):
    """A workload name did not resolve to any registry entry.

    ``known`` lists every registered name, so CLIs can print the menu and
    exit with a usage error — the workload twin of
    :class:`UnknownMachineError`.
    """

    def __init__(self, name: str, known: list[str]):
        self.name = name
        self.known = list(known)
        super().__init__(
            f"unknown workload {name!r}; known: {', '.join(self.known)}"
        )


class ExperimentError(ReproError):
    """An experiment harness was misconfigured."""
