"""Command-line interface.

Usage::

    python -m repro map SOURCE.loop --machine dunnington [--schedule]
    python -m repro simulate SOURCE.loop --machine dunnington --scheme ta
    python -m repro machines
    python -m repro workloads [list|show NAME|table] [--suite irregular]
    python -m repro experiments --quick --jobs 4
    python -m repro cache info
    python -m repro serve --port 8321 --workers 4
    python -m repro submit SOURCE.loop --machine dunnington
    python -m repro remap SOURCE.loop --event '{"kind": "core_loss", "cores": [2]}'
    python -m repro service-stats

``map`` compiles an affine loop program, runs the topology-aware mapper
against the chosen machine and prints the assignment/schedule report;
``simulate`` additionally runs the simulator and compares against Base.
Machines are simulation-scaled with ``--scale`` (default 32; use 1 for
the unscaled Table 1 capacities).
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager

from repro import obs
from repro.errors import ReproError, UnknownMachineError, UnknownWorkloadError
from repro.blocks.tags import render
from repro.lang import compile_source
from repro.mapping import TopologyAwareMapper, base_plan, base_plus_plan, local_plan
from repro.runtime import execute_plan
from repro.topology.machines import _REGISTRY, machine_by_name
from repro.topology.resolve import resolve_machine
from repro.util.tables import format_table


@contextmanager
def _tracing_to(out_path: str | None, tree: bool):
    """Install trace sinks for one CLI run (no-op without any sink)."""
    from repro.obs.sinks import JsonlSink, TreeSink

    sinks = []
    if out_path:
        sinks.append(JsonlSink(out_path))
    if tree:
        sinks.append(TreeSink(sys.stderr))
    if not sinks:
        yield
        return
    with obs.tracing(*sinks):
        yield


def _load_program(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    name = path.rsplit("/", 1)[-1].split(".")[0]
    return compile_source(source, name=name)


def _machine(args):
    if getattr(args, "topology", None):
        from repro.topology.parser import parse_topology

        with open(args.topology, "r", encoding="utf-8") as handle:
            machine = parse_topology(handle.read())
    else:
        machine = resolve_machine(args.machine, getattr(args, "smt", None))
    if args.scale != 1:
        machine = machine.with_scaled_caches(1.0 / args.scale)
    return machine


def cmd_machines(_args) -> int:
    from repro.topology.ingest.zoo import zoo_entries

    for name in _REGISTRY:
        print(machine_by_name(name).describe())
        print()
    entries = zoo_entries()
    if entries:
        print("machine zoo (use --machine zoo:<name>):")
        rows = [
            (f"zoo:{name}", entry.cores_hint(), entry.description)
            for name, entry in sorted(entries.items())
        ]
        print(format_table(["name", "cores", "description"], rows))
    return 0


def cmd_workloads_table(args) -> int:
    from repro.workloads import application_table

    print(application_table(getattr(args, "suite", None)))
    return 0


def cmd_workloads_list(args) -> int:
    from repro.workloads import all_workloads, suites

    suite = getattr(args, "suite", None)
    selected = all_workloads(suite)
    if not selected:
        print(f"error: no workloads in suite {suite!r}; suites: "
              f"{', '.join(suites())}", file=sys.stderr)
        return 2
    rows = [(w.name, w.suite, w.kind, w.description) for w in selected]
    print(format_table(["name", "suite", "origin", "description"], rows))
    return 0


def cmd_workloads_show(args) -> int:
    from repro.workloads import workload

    w = workload(args.name)  # UnknownWorkloadError -> usage error in main()
    nest = w.nest()
    analysis = "affine" if nest.is_affine() else "trace (indirect subscripts)"
    print(f"{w.name}: {w.description}")
    print(f"  suite        {w.suite}")
    print(f"  origin       {w.kind}")
    print(f"  data         {w.data_bytes() / 1024:.0f}KB "
          f"({w.num_blocks} blocks of {w.block_size()}B)")
    print(f"  iterations   {nest.iteration_count()}")
    print(f"  references   {len(nest.accesses)}")
    print(f"  analysis     {analysis}")
    if w.index_data:
        arrays = ", ".join(
            f"{name}[{len(values)}]" for name, values in w.index_data
        )
        print(f"  index data   {arrays}")
    if args.source:
        print()
        print(w.source.strip())
    return 0


def cmd_map(args) -> int:
    program = _load_program(args.source)
    machine = _machine(args)
    nest = program.nests[args.nest]
    mapper = TopologyAwareMapper(
        machine,
        block_size=args.block_size,
        balance_threshold=args.balance,
        local_scheduling=args.schedule and not args.no_local_scheduling,
        alpha=args.alpha,
        beta=args.beta,
    )
    with obs.span("cli.map", source=args.source, machine=machine.name):
        result = mapper.map_nest(program, nest)
    n = result.partition.num_blocks
    print(f"nest {nest.name!r}: {nest.iteration_count()} iterations, "
          f"{len(result.group_set)} iteration groups over {n} data blocks "
          f"(block size {result.partition.block_size}B)")
    rows = []
    for core, rounds in enumerate(result.group_rounds):
        order = " -> ".join(
            render(g.tag, n) if n <= 32 else f"#{g.ident}"
            for rnd in rounds for g in rnd
        )
        size = sum(g.size for rnd in rounds for g in rnd)
        rows.append((core, size, order or "(idle)"))
    print(format_table(["core", "iterations", "schedule"], rows))
    timings = ", ".join(f"{k}={v * 1000:.0f}ms" for k, v in result.timings.items())
    print(f"mapper timings: {timings}")
    return 0


def cmd_simulate(args) -> int:
    program = _load_program(args.source)
    machine = _machine(args)
    nest = program.nests[args.nest]

    from repro.sim.engine import SimConfig

    config = SimConfig(backend=args.backend)

    def plan_for(scheme: str):
        if scheme == "base":
            return base_plan(nest, machine)
        if scheme == "base+":
            return base_plus_plan(nest, machine)
        mapper = TopologyAwareMapper(
            machine,
            block_size=args.block_size,
            balance_threshold=args.balance,
            local_scheduling=(scheme == "ta+s"),
        )
        result = mapper.map_nest(program, nest)
        if scheme == "local":
            return local_plan(nest, machine, result.partition)
        return result.plan()

    with obs.span("cli.simulate", source=args.source, scheme=args.scheme):
        base_result = execute_plan(plan_for("base"), verify=True, config=config)
        result = (
            execute_plan(plan_for(args.scheme), verify=True, config=config)
            if args.scheme != "base"
            else None
        )
    print(base_result.summary())
    if result is not None:
        print(result.summary())
        print(f"\n{args.scheme} vs base: {result.cycles / base_result.cycles:.3f} "
              f"({base_result.cycles / result.cycles:.2f}x speedup)")
    return 0


def cmd_trace(args) -> int:
    """Run a full mapping (+ simulation) with tracing on and report it."""
    from repro.obs.report import render_report
    from repro.obs.sinks import read_jsonl

    program = _load_program(args.source)
    machine = _machine(args)
    nest = program.nests[args.nest]
    with _tracing_to(out_path=args.out, tree=False):
        with obs.span(
            "cli.trace", source=args.source, scheme=args.scheme, machine=machine.name
        ):
            mapper = TopologyAwareMapper(
                machine,
                block_size=args.block_size,
                balance_threshold=args.balance,
                local_scheduling=(args.scheme == "ta+s"),
            )
            if args.profile:
                with obs.profiled("cli.trace.mapping"):
                    result = mapper.map_nest(program, nest)
            else:
                result = mapper.map_nest(program, nest)
            if not args.no_sim:
                execute_plan(result.plan())
    print(f"trace written to {args.out}")
    records = read_jsonl(args.out)
    print()
    print(render_report(records, tree=args.tree, profiles=args.profile))
    return 0


def cmd_experiments(args) -> int:
    """Forward to the experiment suite driver (repro.experiments.run_all)."""
    from repro.experiments import run_all

    argv = []
    if args.quick:
        argv.append("--quick")
    if args.charts:
        argv.append("--charts")
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.only:
        argv += ["--only", args.only]
    for name in args.workloads or ():
        argv += ["--workload", name]
    for spec in args.machines or ():
        argv += ["--machine", spec]
    if args.no_cache:
        argv.append("--no-cache")
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    return run_all.main(argv)


def cmd_cache(args) -> int:
    from repro.experiments import cache as result_cache

    directory = args.dir or result_cache.default_cache_dir()
    if args.action == "path":
        print(directory)
        return 0
    if args.action == "clear":
        removed = result_cache.clear(directory)
        print(f"removed {removed} cache file(s) from {directory}")
        return 0
    files = result_cache.info(directory)
    if not files:
        print(f"no result caches in {directory}")
        return 0
    rows = [
        (
            entry["file"],
            entry["entries"],
            f"{entry['bytes'] / 1024:.1f}KB",
            "current" if entry["current"] else "stale",
        )
        for entry in files
    ]
    print(format_table(["file", "results", "size", "fingerprint"], rows))
    return 0


def cmd_tune(args) -> int:
    from repro.mapping.autotune import autotune_block_size

    program = _load_program(args.source)
    machine = _machine(args)
    nest = program.nests[args.nest]
    candidates = tuple(int(c) for c in args.candidates.split(",") if c)
    result = autotune_block_size(
        program, nest, machine, candidates,
        local_scheduling=args.schedule, balance_threshold=args.balance,
    )
    print(result.table())
    print(f"\nbest block size: {result.best.block_size} bytes "
          f"({result.best.cycles} cycles)")
    return 0


def cmd_serve(args) -> int:
    from repro.service.server import MappingService, ServiceConfig, _default_workers

    threads = args.threads if args.threads is not None else _default_workers()
    if args.workers >= 2:
        # Sharded mode: a front router consistent-hashing requests over
        # N forked worker processes sharing the plan disk tier.
        from repro.service.shard import ShardConfig, ShardService

        shard_config = ShardConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            threads=threads,
            queue_size=args.queue_size,
            lru_capacity=args.lru_capacity,
            cache_dir=args.cache_dir,
            persistent=args.persistent,
            default_deadline_ms=args.deadline_ms,
            debug=args.debug,
            quiet=not args.verbose,
            router_cache_capacity=0 if args.no_router_cache else 1024,
            health_interval_s=args.health_interval,
        )
        return ShardService(shard_config).serve()
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        queue_size=args.queue_size,
        workers=threads,
        lru_capacity=args.lru_capacity,
        cache_dir=args.cache_dir,
        persistent=args.persistent,
        default_deadline_ms=args.deadline_ms,
        debug=args.debug,
        quiet=not args.verbose,
    )
    return MappingService(config).serve()


def cmd_submit(args) -> int:
    from repro.service.client import ServiceClient

    with open(args.source, "r", encoding="utf-8") as handle:
        source = handle.read()
    knobs = {
        "local_scheduling": args.schedule and not args.no_local_scheduling,
        "balance_threshold": args.balance,
        "alpha": args.alpha,
        "beta": args.beta,
    }
    if args.block_size is not None:
        knobs["block_size"] = args.block_size
    topology = None
    if args.topology:
        with open(args.topology, "r", encoding="utf-8") as handle:
            topology = handle.read()
    client = ServiceClient(host=args.host, port=args.port, timeout=args.timeout)
    response = client.submit(
        source=source,
        machine=None if topology else args.machine,
        topology=topology,
        nest=args.nest,
        scale=float(args.scale),
        knobs=knobs,
        deadline_ms=args.deadline_ms,
        no_cache=args.no_cache,
        name=args.source.rsplit("/", 1)[-1].split(".")[0],
    )
    if args.json:
        print(json.dumps(response, indent=2))
        return 0
    stats = response["stats"]
    flags = []
    if response["degraded"]:
        flags.append(f"DEGRADED ({response.get('degraded_reason', 'deadline')})")
    if response["cache"] in ("memory", "disk"):
        flags.append(f"cache hit ({response['cache']})")
    suffix = f" [{'; '.join(flags)}]" if flags else ""
    print(
        f"{response['scheme']} mapping of nest {response['nest']!r} on "
        f"{response['machine']}: {stats['iterations']} iterations over "
        f"{stats['cores']} cores in {stats['rounds']} round(s){suffix}"
    )
    rows = [
        (core, count)
        for core, count in enumerate(stats["per_core_iterations"])
    ]
    print(format_table(["core", "iterations"], rows))
    print(
        f"request {response['request_id']}: {response['elapsed_ms']:.1f}ms "
        f"({response['queue_wait_ms']:.1f}ms queued)"
    )
    return 0


def cmd_remap(args) -> int:
    """Apply remap events locally (incremental Remapper) or via /remap."""
    events = []
    for raw in args.event:
        try:
            decoded = json.loads(raw)
        except json.JSONDecodeError as error:
            print(f"error: bad --event JSON: {error}", file=sys.stderr)
            return 1
        if not isinstance(decoded, dict):
            print("error: --event must be a JSON object", file=sys.stderr)
            return 1
        events.append(decoded)

    knobs = {
        "local_scheduling": args.schedule,
        "balance_threshold": args.balance,
        "alpha": args.alpha,
        "beta": args.beta,
    }
    if args.block_size is not None:
        knobs["block_size"] = args.block_size

    if args.via_service:
        return _remap_via_service(args, events, knobs)

    from repro.pipeline.knobs import Knobs
    from repro.remap import Remapper
    from repro.remap.events import parse_event

    program = _load_program(args.source)
    machine = _machine(args)
    remapper = Remapper(program, machine, knobs=Knobs(**knobs))
    rows = []
    outcomes = []
    for raw in events:
        outcome = remapper.apply(parse_event(raw))
        outcomes.append(outcome)
        rows.append((
            outcome.kind,
            ",".join(str(n) for n in outcome.affected),
            outcome.machine.num_cores,
            outcome.stages_replayed,
            outcome.stages_recomputed,
            outcome.carried,
            f"{outcome.elapsed_ms:.1f}",
        ))
    if args.json:
        print(json.dumps([
            {
                "event": o.kind,
                "affected": list(o.affected),
                "machine": o.machine.name,
                "cores": o.machine.num_cores,
                "stages_replayed": o.stages_replayed,
                "stages_recomputed": o.stages_recomputed,
                "carried": o.carried,
                "elapsed_ms": round(o.elapsed_ms, 3),
            }
            for o in outcomes
        ], indent=2))
        return 0
    print(f"remapper on {machine.name}: "
          f"{len(program.nests)} nest(s) primed, {len(events)} event(s)")
    print(format_table(
        ["event", "nests", "cores", "replayed", "recomputed", "carried", "ms"],
        rows,
    ))
    return 0


def _remap_via_service(args, events: list[dict], knobs: dict) -> int:
    from repro.service.client import ServiceClient

    with open(args.source, "r", encoding="utf-8") as handle:
        source = handle.read()
    client = ServiceClient(host=args.host, port=args.port, timeout=args.timeout)
    # The wire protocol is stateless: the client carries the accumulated
    # dead-core set between calls so each /remap states the full pre state.
    dead: set[int] = set(args.dead_cores or ())
    rows = []
    responses = []
    for raw in events:
        response = client.remap(
            event=raw,
            source=source,
            machine=args.machine,
            nest=args.nest,
            scale=float(args.scale),
            knobs=knobs,
            dead_cores=sorted(dead),
            name=args.source.rsplit("/", 1)[-1].split(".")[0],
        )
        responses.append(response)
        kind = raw.get("kind")
        if kind == "core_loss":
            dead.update(raw.get("cores", ()))
        elif kind == "core_hotplug":
            dead.difference_update(raw.get("cores", ()))
        elif kind == "topology_edit":
            dead.clear()
        stanza = response["remap"]
        rows.append((
            kind,
            response["nest"],
            stanza["cores"],
            stanza["stages_replayed"],
            stanza["stages_recomputed"],
            stanza["carried"],
            f"{response['elapsed_ms']:.1f}",
        ))
    if args.json:
        print(json.dumps(responses, indent=2))
        return 0
    print(format_table(
        ["event", "nest", "cores", "replayed", "recomputed", "carried", "ms"],
        rows,
    ))
    return 0


def _topo_machine(args, spec: str):
    """Resolve a ``topo`` operand: a machine spec or a bare dump path."""
    import os

    if os.path.exists(spec) and ":" not in spec:
        from repro.topology.ingest import NormalizeOptions, ingest_sysfs

        options = NormalizeOptions(
            smt_policy=args.smt or "merge",
            name=getattr(args, "name", None),
            clock_ghz=getattr(args, "clock", None),
            memory_latency=getattr(args, "memory_latency", None),
        )
        return ingest_sysfs(spec, options)
    return resolve_machine(spec, getattr(args, "smt", None))


def cmd_topo_ingest(args) -> int:
    from repro.experiments.cache import machine_digest
    from repro.runtime.serialize import machine_to_dict
    from repro.topology.ingest import (
        NormalizeOptions,
        cross_validate,
        load_lscpu,
        load_sysfs,
        normalize,
    )
    from repro.topology.render import render_tree

    options = NormalizeOptions(
        smt_policy=args.smt or "merge",
        name=args.name,
        clock_ghz=args.clock,
        memory_latency=args.memory_latency,
    )
    raw = load_sysfs(args.path)
    issues = []
    if args.lscpu:
        issues = cross_validate(raw, load_lscpu(args.lscpu))
    machine = normalize(raw, options)
    digest = machine_digest(machine)
    if args.json:
        payload = machine_to_dict(machine)
        payload["digest"] = digest
        if issues:
            payload["crosscheck"] = issues
        print(json.dumps(payload, indent=2))
    else:
        print(render_tree(machine))
        print(f"digest {digest}")
        if raw.offline:
            print(f"offline cpus: {','.join(str(c) for c in raw.offline)}")
        for issue in issues:
            print(f"crosscheck: {issue}", file=sys.stderr)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            payload = machine_to_dict(machine)
            payload["digest"] = digest
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return 0


def cmd_topo_show(args) -> int:
    from repro.experiments.cache import machine_digest
    from repro.runtime.serialize import machine_to_dict
    from repro.topology.render import render_tree

    machine = _topo_machine(args, args.machine)
    if args.json:
        payload = machine_to_dict(machine)
        payload["digest"] = machine_digest(machine)
        print(json.dumps(payload, indent=2))
    else:
        print(render_tree(machine))
        print(f"digest {machine_digest(machine)}")
    return 0


def cmd_topo_validate(args) -> int:
    from repro.experiments.cache import machine_digest

    try:
        machine = _topo_machine(args, args.machine)
    except ReproError as error:
        print(f"INVALID: {error}", file=sys.stderr)
        return 1
    print(
        f"OK: {machine.name} ({machine.num_cores} cores, "
        f"{len(machine.cache_nodes())} caches, digest {machine_digest(machine)})"
    )
    return 0


def cmd_topo_list(args) -> int:
    from repro.topology.ingest.zoo import zoo_entries

    rows = []
    for name in _REGISTRY:
        machine = machine_by_name(name)
        rows.append((name, "builtin", machine.num_cores, ""))
    for name, entry in sorted(zoo_entries().items()):
        rows.append((f"zoo:{name}", "zoo", entry.cores_hint(), entry.description))
    print(format_table(["name", "kind", "cores", "description"], rows))
    return 0


def cmd_topo_diff(args) -> int:
    from repro.experiments.cache import machine_digest
    from repro.topology.render import render_tree

    left = _topo_machine(args, args.left)
    right = _topo_machine(args, args.right)
    digest_left, digest_right = machine_digest(left), machine_digest(right)
    if digest_left == digest_right:
        print(f"identical trees (digest {digest_left})")
        return 0
    lines_left = render_tree(left).splitlines()
    lines_right = render_tree(right).splitlines()
    import difflib

    for line in difflib.unified_diff(
        lines_left, lines_right, fromfile=args.left, tofile=args.right, lineterm=""
    ):
        print(line)
    return 1


def cmd_service_stats(args) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(host=args.host, port=args.port, timeout=args.timeout)
    payload = client.metrics() if args.metrics else json.dumps(client.stats(), indent=2)
    print(payload)
    return 0


def _service_endpoint(p):
    p.add_argument("--host", default="127.0.0.1", help="service host")
    p.add_argument("--port", type=int, default=8321, help="service port")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="client timeout in seconds")


def build_parser() -> argparse.ArgumentParser:
    import repro

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cache topology aware computation mapping (PLDI 2010 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {repro.__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list the built-in machines").set_defaults(func=cmd_machines)
    workloads_parser = sub.add_parser(
        "workloads", help="list, show and tabulate the evaluation workloads"
    )
    # Bare `repro workloads` keeps printing the Table 2 rendering.
    workloads_parser.set_defaults(func=cmd_workloads_table, suite=None)
    workloads_sub = workloads_parser.add_subparsers(dest="workloads_command")

    def suite_option(p):
        p.add_argument("--suite", default=None,
                       help="restrict to one suite (e.g. irregular; "
                            "see 'repro workloads list')")

    wl_list = workloads_sub.add_parser(
        "list", help="one line per workload (name, suite, description)"
    )
    suite_option(wl_list)
    wl_list.set_defaults(func=cmd_workloads_list)

    wl_show = workloads_sub.add_parser(
        "show", help="full detail for one workload"
    )
    wl_show.add_argument("name", help="workload name (see 'list')")
    wl_show.add_argument("--source", action="store_true",
                         help="also print the kernel source")
    wl_show.set_defaults(func=cmd_workloads_show)

    wl_table = workloads_sub.add_parser(
        "table", help="the Table 2 rendering (data sizes, iterations)"
    )
    suite_option(wl_table)
    wl_table.set_defaults(func=cmd_workloads_table)

    def common(p, tracing=True):
        p.add_argument("source", help="affine loop program file")
        p.add_argument("--machine", default="dunnington", help="target machine name")
        p.add_argument("--topology", default=None,
                       help="file with a topology spec string (overrides --machine)")
        p.add_argument("--scale", type=int, default=32,
                       help="divide cache capacities by this factor (default 32)")
        p.add_argument("--nest", type=int, default=0, help="nest index (default 0)")
        p.add_argument("--block-size", type=int, default=None,
                       help="data block size in bytes (default: Section 4.1 heuristic)")
        p.add_argument("--balance", "--balance-threshold", type=float,
                       default=0.10, dest="balance",
                       help="load-balance threshold (Sections 3.4/4.1; "
                            "default 0.10, the paper's)")
        if tracing:
            p.add_argument("--trace", action="store_true",
                           help="print a span tree of the run to stderr")
            p.add_argument("--trace-out", default=None, metavar="FILE",
                           help="write a machine-readable JSONL trace to FILE")

    map_parser = sub.add_parser("map", help="run the topology-aware mapper")
    common(map_parser)
    map_parser.add_argument("--schedule", action="store_true",
                            help="apply Figure 7 local scheduling")
    map_parser.add_argument("--no-local-scheduling", action="store_true",
                            help="force the Section 3.5.3 local scheduler "
                                 "off (overrides --schedule)")
    map_parser.add_argument("--alpha", type=float, default=0.5,
                            help="reuse weight in the Figure 7 scheduler "
                                 "(Section 3.5.3; default 0.5)")
    map_parser.add_argument("--beta", type=float, default=0.5,
                            help="footprint weight in the Figure 7 scheduler "
                                 "(Section 3.5.3; default 0.5)")
    map_parser.set_defaults(func=cmd_map)

    sim_parser = sub.add_parser("simulate", help="simulate a scheme vs Base")
    common(sim_parser)
    sim_parser.add_argument("--scheme", default="ta",
                            choices=("base", "base+", "local", "ta", "ta+s"))
    sim_parser.add_argument("--backend", default="auto",
                            choices=("auto", "python", "numpy"),
                            help="simulation engine: per-access oracle "
                                 "('python') or batched ('numpy'); "
                                 "'auto' batches when numpy is available")
    sim_parser.set_defaults(func=cmd_simulate)

    exp_parser = sub.add_parser(
        "experiments", help="run the paper's experiment suite"
    )
    exp_parser.add_argument("--quick", action="store_true",
                            help="6-app subset instead of all workloads")
    exp_parser.add_argument("--charts", action="store_true",
                            help="append ASCII bar charts")
    exp_parser.add_argument("--jobs", type=int, default=None, metavar="N",
                            help="worker processes (default: CPU count)")
    exp_parser.add_argument("--only", default=None, metavar="SUBSTR",
                            help="run only matching steps (e.g. fig13)")
    exp_parser.add_argument("--workload", action="append", default=None,
                            metavar="NAME", dest="workloads",
                            help="restrict the figures to workload NAME "
                                 "(repeatable; see 'repro workloads list')")
    exp_parser.add_argument("--machine", action="append", default=None,
                            metavar="SPEC", dest="machines",
                            help="restrict the machine-zoo sweeps to SPEC "
                                 "(repeatable; builtin name, zoo:<name>, "
                                 "sysfs:<path>, or lscpu:<path>)")
    exp_parser.add_argument("--no-cache", action="store_true",
                            help="skip the persistent result cache")
    exp_parser.add_argument("--cache-dir", default=None, metavar="DIR",
                            help="persistent cache directory")
    exp_parser.set_defaults(func=cmd_experiments)

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the persistent result cache"
    )
    cache_parser.add_argument("action", choices=("info", "clear", "path"))
    cache_parser.add_argument("--dir", default=None, metavar="DIR",
                              help="cache directory (default: "
                                   "$REPRO_CACHE_DIR or ~/.cache/repro)")
    cache_parser.set_defaults(func=cmd_cache)

    trace_parser = sub.add_parser(
        "trace", help="trace a full mapping run and report per-phase timings"
    )
    common(trace_parser, tracing=False)
    trace_parser.add_argument("--scheme", default="ta+s", choices=("ta", "ta+s"),
                              help="mapping scheme to trace (default ta+s)")
    trace_parser.add_argument("--out", default="trace.jsonl", metavar="FILE",
                              help="JSONL trace output path (default trace.jsonl)")
    trace_parser.add_argument("--tree", action="store_true",
                              help="include the span tree in the printed report")
    trace_parser.add_argument("--profile", action="store_true",
                              help="additionally cProfile the mapping phase")
    trace_parser.add_argument("--no-sim", action="store_true",
                              help="trace the mapper only, skip the simulation")
    trace_parser.set_defaults(func=cmd_trace)

    serve_parser = sub.add_parser(
        "serve", help="run the mapping service daemon (HTTP/JSON)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument("--port", type=int, default=8321,
                              help="bind port (0 picks an ephemeral port)")
    serve_parser.add_argument("--queue-size", type=int, default=64, metavar="Q",
                              help="admission queue capacity (default 64)")
    serve_parser.add_argument("--workers", type=int, default=1, metavar="N",
                              help="worker processes; >= 2 enables sharded "
                                   "mode with a consistent-hash front router "
                                   "(default 1: single process)")
    serve_parser.add_argument("--threads", type=int, default=None, metavar="T",
                              help="admission worker threads per process "
                                   "(default: up to 4)")
    serve_parser.add_argument("--no-router-cache", action="store_true",
                              help="sharded mode: disable the router's "
                                   "hot-key response cache")
    serve_parser.add_argument("--health-interval", type=float, default=0.25,
                              metavar="S",
                              help="sharded mode: dead-worker sweep period "
                                   "(default 0.25s)")
    serve_parser.add_argument("--lru-capacity", type=int, default=512,
                              metavar="N", help="in-process cache entries")
    serve_parser.add_argument("--persistent", action="store_true",
                              help="enable the on-disk mapping cache tier")
    serve_parser.add_argument("--cache-dir", default=None, metavar="DIR",
                              help="persistent cache directory (default: "
                                   "$REPRO_CACHE_DIR or ~/.cache/repro)")
    serve_parser.add_argument("--deadline-ms", type=float, default=None,
                              metavar="MS",
                              help="default per-request deadline (none: never "
                                   "degrade unless the request asks)")
    serve_parser.add_argument("--debug", action="store_true",
                              help="honor test-only request fields "
                                   "(debug_sleep_ms)")
    serve_parser.add_argument("--verbose", action="store_true",
                              help="log each HTTP request to stderr")
    serve_parser.set_defaults(func=cmd_serve)

    submit_parser = sub.add_parser(
        "submit", help="submit one mapping request to a running service"
    )
    submit_parser.add_argument("source", help="affine loop program file")
    _service_endpoint(submit_parser)
    submit_parser.add_argument("--machine", default="dunnington",
                               help="target machine name")
    submit_parser.add_argument("--topology", default=None,
                               help="file with a topology spec string "
                                    "(overrides --machine)")
    submit_parser.add_argument("--scale", type=int, default=1,
                               help="divide cache capacities by this factor")
    submit_parser.add_argument("--nest", type=int, default=0,
                               help="nest index (default 0)")
    submit_parser.add_argument("--block-size", type=int, default=None,
                               help="data block size in bytes")
    submit_parser.add_argument("--balance", "--balance-threshold", type=float,
                               default=0.10, dest="balance",
                               help="load-balance threshold (Sections "
                                    "3.4/4.1; default 0.10)")
    submit_parser.add_argument("--alpha", type=float, default=0.5,
                               help="reuse weight in the Figure 7 scheduler "
                                    "(Section 3.5.3; default 0.5)")
    submit_parser.add_argument("--beta", type=float, default=0.5,
                               help="footprint weight in the Figure 7 "
                                    "scheduler (Section 3.5.3; default 0.5)")
    submit_parser.add_argument("--schedule", action="store_true",
                               help="apply Figure 7 local scheduling")
    submit_parser.add_argument("--no-local-scheduling", action="store_true",
                               help="force the Section 3.5.3 local scheduler "
                                    "off (overrides --schedule)")
    submit_parser.add_argument("--deadline-ms", type=float, default=None,
                               metavar="MS", help="per-request deadline")
    submit_parser.add_argument("--no-cache", action="store_true",
                               help="bypass the service's mapping cache")
    submit_parser.add_argument("--json", action="store_true",
                               help="print the raw JSON response")
    submit_parser.set_defaults(func=cmd_submit)

    remap_parser = sub.add_parser(
        "remap", help="apply dynamic events through the incremental remapper"
    )
    remap_parser.add_argument("source", help="affine loop program file")
    remap_parser.add_argument("--event", action="append", required=True,
                              metavar="JSON",
                              help="one event as JSON (repeatable), e.g. "
                                   '\'{"kind": "core_loss", "cores": [2]}\' or '
                                   '\'{"kind": "phase_change", '
                                   '"knobs": {"alpha": 0.8}}\'')
    remap_parser.add_argument("--machine", default="dunnington",
                              help="base machine name")
    remap_parser.add_argument("--topology", default=None,
                              help="file with a topology spec string "
                                   "(overrides --machine; local mode only)")
    remap_parser.add_argument("--scale", type=int, default=32,
                              help="divide cache capacities by this factor "
                                   "(default 32)")
    remap_parser.add_argument("--nest", type=int, default=0,
                              help="nest index for --via-service (local mode "
                                   "remaps every nest)")
    remap_parser.add_argument("--block-size", type=int, default=None,
                              help="data block size in bytes")
    remap_parser.add_argument("--balance", "--balance-threshold", type=float,
                              default=0.10, dest="balance",
                              help="load-balance threshold (default 0.10)")
    remap_parser.add_argument("--alpha", type=float, default=0.5,
                              help="reuse weight in the Figure 7 scheduler")
    remap_parser.add_argument("--beta", type=float, default=0.5,
                              help="footprint weight in the Figure 7 scheduler")
    remap_parser.add_argument("--schedule", action="store_true",
                              help="apply Figure 7 local scheduling")
    remap_parser.add_argument("--via-service", action="store_true",
                              help="send the events to a running service's "
                                   "/remap instead of remapping in-process")
    remap_parser.add_argument("--dead-cores", type=lambda s: [
                                  int(c) for c in s.split(",") if c
                              ], default=None, metavar="IDS",
                              help="--via-service: comma-separated cores "
                                   "already offline before the first event")
    remap_parser.add_argument("--json", action="store_true",
                              help="print raw JSON instead of the table")
    _service_endpoint(remap_parser)
    remap_parser.set_defaults(func=cmd_remap)

    stats_parser = sub.add_parser(
        "service-stats", help="print a running service's /stats (or /metrics)"
    )
    _service_endpoint(stats_parser)
    stats_parser.add_argument("--metrics", action="store_true",
                              help="print Prometheus-style /metrics instead")
    stats_parser.set_defaults(func=cmd_service_stats)

    tune_parser = sub.add_parser("tune", help="search block sizes by simulation")
    common(tune_parser)
    tune_parser.add_argument("--candidates", default="512,1024,2048,4096",
                             help="comma-separated block sizes in bytes")
    tune_parser.add_argument("--schedule", action="store_true",
                             help="tune the combined (scheduled) scheme")
    tune_parser.set_defaults(func=cmd_tune)

    topo_parser = sub.add_parser(
        "topo", help="ingest, inspect and validate machine topologies"
    )
    topo_sub = topo_parser.add_subparsers(dest="topo_command", required=True)

    def smt_option(p):
        p.add_argument("--smt", default=None, choices=("merge", "threads"),
                       help="SMT sibling policy for ingested dumps: fold "
                            "siblings into one core ('merge', default) or "
                            "model threads as cores sharing an L1")

    ingest_parser = topo_sub.add_parser(
        "ingest", help="read a sysfs tree (live /sys, dump dir, or tar)"
    )
    ingest_parser.add_argument("path", help="/sys, a dump directory, or a "
                                            ".tar/.tar.gz archive of one")
    ingest_parser.add_argument("--lscpu", default=None, metavar="FILE",
                               help="saved 'lscpu -J' output to cross-validate")
    smt_option(ingest_parser)
    ingest_parser.add_argument("--name", default=None, help="machine name")
    ingest_parser.add_argument("--clock", type=float, default=None,
                               metavar="GHZ", help="override the clock")
    ingest_parser.add_argument("--memory-latency", type=int, default=None,
                               metavar="CYCLES",
                               help="off-chip latency (default: 100ns at the "
                                    "machine clock)")
    ingest_parser.add_argument("--json", action="store_true",
                               help="print the full machine as JSON")
    ingest_parser.add_argument("--out", default=None, metavar="FILE",
                               help="also write the machine JSON to FILE")
    ingest_parser.set_defaults(func=cmd_topo_ingest)

    show_parser = topo_sub.add_parser(
        "show", help="render a machine spec as a tree"
    )
    show_parser.add_argument("machine", help="builtin name, zoo:<name>, "
                                             "sysfs:<path>, lscpu:<path>, or "
                                             "a dump path")
    smt_option(show_parser)
    show_parser.add_argument("--json", action="store_true",
                             help="print the full machine as JSON")
    show_parser.set_defaults(func=cmd_topo_show)

    validate_parser = topo_sub.add_parser(
        "validate", help="check that a machine spec or dump ingests cleanly"
    )
    validate_parser.add_argument("machine", help="machine spec or dump path")
    smt_option(validate_parser)
    validate_parser.set_defaults(func=cmd_topo_validate)

    list_parser = topo_sub.add_parser(
        "list", help="list builtin and zoo machines"
    )
    list_parser.set_defaults(func=cmd_topo_list)

    diff_parser = topo_sub.add_parser(
        "diff", help="structurally compare two machine specs"
    )
    diff_parser.add_argument("left", help="machine spec or dump path")
    diff_parser.add_argument("right", help="machine spec or dump path")
    smt_option(diff_parser)
    diff_parser.set_defaults(func=cmd_topo_diff)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        with _tracing_to(
            getattr(args, "trace_out", None), getattr(args, "trace", False)
        ):
            return args.func(args)
    except UnknownMachineError as error:
        # A usage error, like argparse's own: print the menu, exit 2.
        print(f"error: unknown machine {error.spec!r}", file=sys.stderr)
        print("known machines:", file=sys.stderr)
        for name in error.known:
            print(f"  {name}", file=sys.stderr)
        return 2
    except UnknownWorkloadError as error:
        print(f"error: unknown workload {error.name!r}", file=sys.stderr)
        print("known workloads:", file=sys.stderr)
        for name in error.known:
            print(f"  {name}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
