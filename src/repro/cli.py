"""Command-line interface.

Usage::

    python -m repro map SOURCE.loop --machine dunnington [--schedule]
    python -m repro simulate SOURCE.loop --machine dunnington --scheme ta
    python -m repro machines
    python -m repro workloads

``map`` compiles an affine loop program, runs the topology-aware mapper
against the chosen machine and prints the assignment/schedule report;
``simulate`` additionally runs the simulator and compares against Base.
Machines are simulation-scaled with ``--scale`` (default 32; use 1 for
the unscaled Table 1 capacities).
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.blocks.tags import render
from repro.lang import compile_source
from repro.mapping import TopologyAwareMapper, base_plan, base_plus_plan, local_plan
from repro.runtime import execute_plan
from repro.topology.machines import _REGISTRY, machine_by_name
from repro.util.tables import format_table


def _load_program(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    name = path.rsplit("/", 1)[-1].split(".")[0]
    return compile_source(source, name=name)


def _machine(args):
    if getattr(args, "topology", None):
        from repro.topology.parser import parse_topology

        with open(args.topology, "r", encoding="utf-8") as handle:
            machine = parse_topology(handle.read())
    else:
        machine = machine_by_name(args.machine)
    if args.scale != 1:
        machine = machine.with_scaled_caches(1.0 / args.scale)
    return machine


def cmd_machines(_args) -> int:
    for name in _REGISTRY:
        print(machine_by_name(name).describe())
        print()
    return 0


def cmd_workloads(_args) -> int:
    from repro.workloads import application_table

    print(application_table())
    return 0


def cmd_map(args) -> int:
    program = _load_program(args.source)
    machine = _machine(args)
    nest = program.nests[args.nest]
    mapper = TopologyAwareMapper(
        machine,
        block_size=args.block_size,
        balance_threshold=args.balance,
        local_scheduling=args.schedule,
        alpha=args.alpha,
        beta=args.beta,
    )
    result = mapper.map_nest(program, nest)
    n = result.partition.num_blocks
    print(f"nest {nest.name!r}: {nest.iteration_count()} iterations, "
          f"{len(result.group_set)} iteration groups over {n} data blocks "
          f"(block size {result.partition.block_size}B)")
    rows = []
    for core, rounds in enumerate(result.group_rounds):
        order = " -> ".join(
            render(g.tag, n) if n <= 32 else f"#{g.ident}"
            for rnd in rounds for g in rnd
        )
        size = sum(g.size for rnd in rounds for g in rnd)
        rows.append((core, size, order or "(idle)"))
    print(format_table(["core", "iterations", "schedule"], rows))
    timings = ", ".join(f"{k}={v * 1000:.0f}ms" for k, v in result.timings.items())
    print(f"mapper timings: {timings}")
    return 0


def cmd_simulate(args) -> int:
    program = _load_program(args.source)
    machine = _machine(args)
    nest = program.nests[args.nest]

    def plan_for(scheme: str):
        if scheme == "base":
            return base_plan(nest, machine)
        if scheme == "base+":
            return base_plus_plan(nest, machine)
        mapper = TopologyAwareMapper(
            machine,
            block_size=args.block_size,
            balance_threshold=args.balance,
            local_scheduling=(scheme == "ta+s"),
        )
        result = mapper.map_nest(program, nest)
        if scheme == "local":
            return local_plan(nest, machine, result.partition)
        return result.plan()

    base_result = execute_plan(plan_for("base"), verify=True)
    print(base_result.summary())
    if args.scheme != "base":
        result = execute_plan(plan_for(args.scheme), verify=True)
        print(result.summary())
        print(f"\n{args.scheme} vs base: {result.cycles / base_result.cycles:.3f} "
              f"({base_result.cycles / result.cycles:.2f}x speedup)")
    return 0


def cmd_tune(args) -> int:
    from repro.mapping.autotune import autotune_block_size

    program = _load_program(args.source)
    machine = _machine(args)
    nest = program.nests[args.nest]
    candidates = tuple(int(c) for c in args.candidates.split(",") if c)
    result = autotune_block_size(
        program, nest, machine, candidates,
        local_scheduling=args.schedule, balance_threshold=args.balance,
    )
    print(result.table())
    print(f"\nbest block size: {result.best.block_size} bytes "
          f"({result.best.cycles} cycles)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cache topology aware computation mapping (PLDI 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list the built-in machines").set_defaults(func=cmd_machines)
    sub.add_parser("workloads", help="list the evaluation workloads").set_defaults(func=cmd_workloads)

    def common(p):
        p.add_argument("source", help="affine loop program file")
        p.add_argument("--machine", default="dunnington", help="target machine name")
        p.add_argument("--topology", default=None,
                       help="file with a topology spec string (overrides --machine)")
        p.add_argument("--scale", type=int, default=32,
                       help="divide cache capacities by this factor (default 32)")
        p.add_argument("--nest", type=int, default=0, help="nest index (default 0)")
        p.add_argument("--block-size", type=int, default=None,
                       help="data block size in bytes (default: Section 4.1 heuristic)")
        p.add_argument("--balance", type=float, default=0.10,
                       help="balance threshold (default 0.10, the paper's)")

    map_parser = sub.add_parser("map", help="run the topology-aware mapper")
    common(map_parser)
    map_parser.add_argument("--schedule", action="store_true",
                            help="apply Figure 7 local scheduling")
    map_parser.add_argument("--alpha", type=float, default=0.5)
    map_parser.add_argument("--beta", type=float, default=0.5)
    map_parser.set_defaults(func=cmd_map)

    sim_parser = sub.add_parser("simulate", help="simulate a scheme vs Base")
    common(sim_parser)
    sim_parser.add_argument("--scheme", default="ta",
                            choices=("base", "base+", "local", "ta", "ta+s"))
    sim_parser.set_defaults(func=cmd_simulate)

    tune_parser = sub.add_parser("tune", help="search block sizes by simulation")
    common(tune_parser)
    tune_parser.add_argument("--candidates", default="512,1024,2048,4096",
                             help="comma-separated block sizes in bytes")
    tune_parser.add_argument("--schedule", action="store_true",
                             help="tune the combined (scheduled) scheme")
    tune_parser.set_defaults(func=cmd_tune)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
