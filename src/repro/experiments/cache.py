"""Persistent, content-keyed result cache for the experiment harness.

Every harness run is deterministic, so a ``(workload, machine, scheme,
knobs)`` tuple fully determines its :class:`~repro.sim.stats.SimResult`.
This module stores those results on disk so that a repeated
``repro experiments`` invocation is near-instant.

Keys are *content* keys, never timestamps:

* the harness memo key (workload, scheme, machine names, every knob);
* a structural digest of each machine involved (:func:`machine_digest`),
  so two machines that happen to share a name cannot alias;
* a fingerprint of the simulation-relevant source tree
  (:func:`code_fingerprint`) baked into the cache *file name* —
  ``results-<fp12>.json`` — so any change to the simulator, mapper,
  workloads or harness constants starts from an empty cache instead of
  serving stale results.

The store is a single JSON file per fingerprint under
``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``).  Writes are
write-through and atomic (temp file + ``os.replace``); a corrupt or
foreign file is treated as empty, never an error.  Only the parent
experiment process writes — worker processes run with the disk cache
disabled (see ``repro.experiments.run_all``) — so there is a single
writer per file.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from functools import lru_cache

import repro
from repro.sim.stats import LevelStats, SimResult
from repro.topology.tree import Machine, TopologyNode

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Source files whose content can change simulation results.  Everything
#: under ``src/repro`` counts except presentation/plumbing: the obs
#: layer, the CLI, the serving layer (it only transports pipeline inputs
#: and outputs), the pipeline's cache metadata (the artifact store and
#: plan persistence hold results, they do not compute them — the stage
#: bodies in ``pipeline/core.py`` and ``pipeline/knobs.py`` stay in),
#: and the experiment figure modules (they only arrange results).
#: ``harness.py`` and ``versions.py`` stay in because they hold
#: result-affecting constants (scale, balance threshold) and the
#: retargeting logic.
_EXEMPT_PREFIXES = ("obs/", "service/")
_EXEMPT_FILES = ("cli.py", "pipeline/store.py", "pipeline/persist.py")
_EXPERIMENT_KEEP = ("experiments/harness.py", "experiments/versions.py")


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    configured = os.environ.get(CACHE_DIR_ENV)
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def _fingerprint_relevant(rel: str) -> bool:
    if rel.startswith(_EXEMPT_PREFIXES) or rel in _EXEMPT_FILES:
        return False
    if rel.startswith("experiments/"):
        return rel in _EXPERIMENT_KEEP
    return True


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over the simulation-relevant ``repro`` sources.

    Computed once per process; editing any result-affecting module moves
    the cache to a fresh file, which is exactly the invalidation the
    store needs.
    """
    root = pathlib.Path(repro.__file__).resolve().parent
    hasher = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if not _fingerprint_relevant(rel):
            continue
        hasher.update(rel.encode())
        hasher.update(b"\0")
        hasher.update(path.read_bytes())
        hasher.update(b"\0")
    return hasher.hexdigest()


def _node_spec(node: TopologyNode):
    """Structural tuple for a tree node; deliberately excludes ``uid``
    (a process-local counter that must not leak into cross-process
    keys)."""
    if node.kind == "core":
        return ("core", node.core_id)
    children = tuple(_node_spec(child) for child in node.children)
    if node.kind == "cache":
        spec = node.spec
        return (
            "cache",
            spec.level,
            spec.size_bytes,
            spec.associativity,
            spec.line_size,
            spec.latency,
            children,
        )
    return ("memory", children)


@lru_cache(maxsize=256)
def machine_digest(machine: Machine) -> str:
    """Short structural digest of a machine (topology + timing)."""
    spec = (
        machine.name,
        machine.clock_ghz,
        machine.memory_latency,
        machine.sockets,
        _node_spec(machine.root),
    )
    return hashlib.sha256(repr(spec).encode()).hexdigest()[:16]


def _encode_key(key: tuple) -> str:
    return json.dumps(key, separators=(",", ":"))


def _result_to_dict(result: SimResult) -> dict:
    return {
        "label": result.label,
        "machine_name": result.machine_name,
        "cycles": result.cycles,
        "core_cycles": list(result.core_cycles),
        "levels": [[s.level, s.hits, s.misses] for s in result.levels],
        "memory_accesses": result.memory_accesses,
        "total_accesses": result.total_accesses,
        "barriers": result.barriers,
        "barrier_cycles": result.barrier_cycles,
    }


def _result_from_dict(raw: dict) -> SimResult:
    return SimResult(
        label=raw["label"],
        machine_name=raw["machine_name"],
        cycles=raw["cycles"],
        core_cycles=tuple(raw["core_cycles"]),
        levels=tuple(LevelStats(lvl, hits, misses) for lvl, hits, misses in raw["levels"]),
        memory_accesses=raw["memory_accesses"],
        total_accesses=raw["total_accesses"],
        barriers=raw["barriers"],
        barrier_cycles=raw["barrier_cycles"],
    )


class DiskCache:
    """One on-disk result store, bound to one code fingerprint.

    ``get``/``put`` speak harness key tuples and
    :class:`~repro.sim.stats.SimResult` values.  ``put`` writes through
    immediately (atomic rename), so results survive an interrupted
    experiment run.
    """

    def __init__(self, directory: str | None = None, fingerprint: str | None = None):
        self.directory = directory or default_cache_dir()
        self.fingerprint = fingerprint or code_fingerprint()
        self.path = os.path.join(
            self.directory, f"results-{self.fingerprint[:12]}.json"
        )
        self._entries: dict[str, dict] = self._load()

    def _load(self) -> dict[str, dict]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return {}
        if not isinstance(payload, dict) or payload.get("fingerprint") != self.fingerprint:
            return {}
        entries = payload.get("results")
        return entries if isinstance(entries, dict) else {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> SimResult | None:
        raw = self._entries.get(_encode_key(key))
        if raw is None:
            return None
        try:
            return _result_from_dict(raw)
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, key: tuple, result: SimResult) -> None:
        encoded = _encode_key(key)
        if encoded in self._entries:
            return
        self._entries[encoded] = _result_to_dict(result)
        self._flush()

    def _flush(self) -> None:
        os.makedirs(self.directory, exist_ok=True)
        payload = {"fingerprint": self.fingerprint, "results": self._entries}
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, self.path)


def clear(directory: str | None = None) -> int:
    """Delete every result file in the cache directory; returns the count."""
    directory = directory or default_cache_dir()
    removed = 0
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    for name in names:
        if name.startswith("results-") and name.endswith((".json", ".json.tmp")):
            try:
                os.unlink(os.path.join(directory, name))
                removed += 1
            except OSError:
                pass
    return removed


def info(directory: str | None = None) -> list[dict]:
    """One summary dict per cache file: path, entry count, size, currency."""
    directory = directory or default_cache_dir()
    current = f"results-{code_fingerprint()[:12]}.json"
    out = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return []
    for name in names:
        if not (name.startswith("results-") and name.endswith(".json")):
            continue
        path = os.path.join(directory, name)
        try:
            size = os.path.getsize(path)
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            entries = len(payload.get("results", {}))
        except (OSError, ValueError):
            size, entries = 0, 0
        out.append(
            {
                "file": name,
                "path": path,
                "entries": entries,
                "bytes": size,
                "current": name == current,
            }
        )
    return out
