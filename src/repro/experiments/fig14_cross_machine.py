"""Figure 14: cost of running a version tuned for one machine on another.

For each execution machine we run the two foreign TopologyAware versions
(generated at their native thread counts and ported naively, see
Figure 2) and normalize to the native version.  The paper reports average
degradations of 17%/31% (Nehalem/Dunnington versions on Harpertown),
25%/19% (Harpertown/Dunnington versions on Nehalem) and 24%/21%
(Harpertown/Nehalem versions on Dunnington).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.harness import (
    FigureResult,
    geometric_mean,
    run_version,
    sim_machine,
)
from repro.experiments.versions import version_machine
from repro.topology.machines import commercial_machines
from repro.workloads import paper_workloads

NATIVE_THREADS = {"harpertown": 8, "nehalem": 8, "dunnington": 12}
PATTERNS = ("harpertown", "nehalem", "dunnington")


def run(apps: Sequence[str] | None = None) -> FigureResult:
    selected = [w for w in paper_workloads() if apps is None or w.name in apps]
    rows = []
    for target in commercial_machines():
        target_sim = sim_machine(target)
        native_pattern = target.name
        foreign = [p for p in PATTERNS if p != native_pattern]
        per_version: dict[str, list[float]] = {p: [] for p in foreign}
        for app in selected:
            native_machine = sim_machine(
                version_machine(native_pattern, NATIVE_THREADS[native_pattern])
            )
            native = run_version(app, native_machine, target_sim).cycles
            for pattern in foreign:
                version = sim_machine(version_machine(pattern, NATIVE_THREADS[pattern]))
                cycles = run_version(app, version, target_sim).cycles
                per_version[pattern].append(cycles / native)
        row = [target.name]
        for pattern in foreign:
            row.append(f"{pattern}: {geometric_mean(per_version[pattern]):.3f}")
        rows.append(tuple(row))
    return FigureResult(
        figure="Figure 14: foreign version cost, normalized to the native version",
        headers=("run on", "foreign version A", "foreign version B"),
        rows=tuple(rows),
        notes="paper: harpertown 1.17 (nehalem ver) / 1.31 (dunnington ver); "
        "nehalem 1.25 / 1.19; dunnington 1.24 / 1.21.",
    )


if __name__ == "__main__":
    print(run().table())
