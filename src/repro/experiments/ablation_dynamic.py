"""Ablation (Section 5 text): dynamic self-scheduling vs static mapping.

"Our initial experience with dynamic scheduling schemes like [Markatos &
LeBlanc] did not generate good results on the Harpertown and Dunnington
machines, mostly due to the cost of dynamic iteration distribution."
We compare central-queue self-scheduling (several chunk sizes) against
Base and TopologyAware on Dunnington.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.harness import FigureResult, geometric_mean, run_scheme, sim_machine
from repro.sim.dynamic import simulate_dynamic
from repro.topology.machines import dunnington
from repro.workloads import paper_workloads

CHUNKS = (32, 128, 512)
DEFAULT_APPS = ("galgel", "equake", "facesim", "namd", "h264", "applu")


def run(apps: Sequence[str] | None = None) -> FigureResult:
    names = tuple(apps) if apps is not None else DEFAULT_APPS
    selected = [w for w in paper_workloads() if w.name in names]
    machine = sim_machine(dunnington())
    rows = []
    ta_ratios = []
    dyn_ratios: dict[int, list[float]] = {c: [] for c in CHUNKS}
    for app in selected:
        base = run_scheme(app, "base", machine).cycles
        ta_ratios.append(run_scheme(app, "ta", machine).cycles / base)
        for chunk in CHUNKS:
            dyn = simulate_dynamic(app.nest(), machine, chunk_iterations=chunk)
            dyn_ratios[chunk].append(dyn.cycles / base)
    for chunk in CHUNKS:
        rows.append(
            (f"dynamic, {chunk}-iteration chunks", round(geometric_mean(dyn_ratios[chunk]), 3))
        )
    rows.append(("TopologyAware (static)", round(geometric_mean(ta_ratios), 3)))
    return FigureResult(
        figure="Ablation: dynamic self-scheduling vs static mapping (Dunnington, vs Base)",
        headers=("scheme", "normalized cycles"),
        rows=tuple(rows),
        notes="paper: dynamic schemes 'did not generate good results ... "
        "mostly due to the cost of dynamic iteration distribution'.",
    )


if __name__ == "__main__":
    print(run().table())
