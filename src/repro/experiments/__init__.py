"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes ``run(...) -> FigureResult`` (rows + a rendered
table with the paper's reported numbers alongside ours) and can be run as
a script.  The index lives in DESIGN.md; measured-vs-paper numbers are
recorded in EXPERIMENTS.md.

All experiments run on *simulation-scaled* machines: every cache capacity
is divided by :data:`~repro.experiments.harness.SIM_SCALE_DENOM` while
topology, associativity, line size, and latencies stay unchanged, and the
workload data sizes are scaled to match (see DESIGN.md substitutions).
"""

from repro.experiments.harness import (
    FigureResult,
    run_scheme,
    scheme_cycles,
    sim_machine,
)

__all__ = ["FigureResult", "run_scheme", "scheme_cycles", "sim_machine"]
