"""Figure 15: influence of local iteration reorganization (Dunnington).

Three configurations per application, normalized to Base: global loop
distribution alone (TopologyAware), local reorganization alone (Local),
and combined.  The paper's trends: Local is slightly better than Base+,
and combined is best (average improvement ~37% over Base).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.harness import FigureResult, geometric_mean, run_scheme, sim_machine
from repro.topology.machines import dunnington
from repro.workloads import paper_workloads

SCHEMES = ("ta", "local", "ta+s")


def run(apps: Sequence[str] | None = None) -> FigureResult:
    selected = [w for w in paper_workloads() if apps is None or w.name in apps]
    machine = sim_machine(dunnington())
    rows = []
    ratios: dict[str, list[float]] = {s: [] for s in SCHEMES}
    for app in selected:
        base = run_scheme(app, "base", machine).cycles
        row = [app.name]
        for scheme in SCHEMES:
            ratio = run_scheme(app, scheme, machine).cycles / base
            ratios[scheme].append(ratio)
            row.append(round(ratio, 3))
        rows.append(tuple(row))
    rows.append(
        ("MEAN",) + tuple(round(geometric_mean(ratios[s]), 3) for s in SCHEMES)
    )
    return FigureResult(
        figure="Figure 15: loop distribution vs local scheduling (Dunnington, vs Base)",
        headers=("application", "TopologyAware", "Local", "Combined"),
        rows=tuple(rows),
        notes="paper: Local tracks Base+ closely; Combined is best "
        "(~0.63 of Base on average).",
    )


if __name__ == "__main__":
    print(run().table())
