"""Ablation (Section 4.1 text): compilation-time overhead of the pass.

The paper reports compile-time increases of 65-94% over a compilation
that parallelizes but does not optimize locality.  We measure our
equivalent: frontend-only compilation time vs frontend + the full
TopologyAware pipeline, per application, with the per-phase breakdown the
mapper records.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.experiments.harness import BALANCE_THRESHOLD, FigureResult, sim_machine
from repro.lang import compile_source
from repro.mapping import TopologyAwareMapper
from repro.topology.machines import dunnington
from repro.workloads import paper_workloads


def run(apps: Sequence[str] | None = None) -> FigureResult:
    selected = [w for w in paper_workloads() if apps is None or w.name in apps]
    machine = sim_machine(dunnington())
    rows = []
    for app in selected:
        t0 = time.perf_counter()
        program = compile_source(app.source, name=f"{app.name}-fresh")
        frontend = time.perf_counter() - t0
        mapper = TopologyAwareMapper(
            machine, block_size=app.block_size(), balance_threshold=BALANCE_THRESHOLD
        )
        result = mapper.map_nest(program, program.nests[0])
        mapping = result.compile_time
        rows.append(
            (
                app.name,
                f"{frontend * 1000:.1f}ms",
                f"{result.timings['tagging'] * 1000:.0f}ms",
                f"{result.timings['clustering'] * 1000:.0f}ms",
                f"{result.timings['scheduling'] * 1000:.0f}ms",
                f"{mapping * 1000:.0f}ms",
            )
        )
    return FigureResult(
        figure="Ablation: compile-time cost of the TopologyAware pass",
        headers=("application", "frontend", "tagging", "clustering", "scheduling", "map total"),
        rows=tuple(rows),
        notes="paper: 65-94% increase over a parallelizing compilation.  A "
        "percentage is not comparable here - our frontend is a millisecond-"
        "scale toy next to Phoenix + the Intel compiler - so we report the "
        "pass's absolute cost; its distribution (tagging + clustering "
        "dominate, growing as blocks shrink) matches the paper's account.",
    )


if __name__ == "__main__":
    print(run().table())
