"""Tables 1 and 2 of the paper."""

from __future__ import annotations

from repro.experiments.harness import FigureResult
from repro.topology.machines import commercial_machines
from repro.workloads import paper_workloads


def table1() -> FigureResult:
    """Table 1: the three commercial machines' parameters."""
    rows = []
    for machine in commercial_machines():
        by_level = {}
        for node in machine.cache_nodes():
            by_level.setdefault(node.spec.level, node.spec)
        rows.append(
            (
                machine.name,
                f"{machine.num_cores} cores ({machine.sockets} sockets)",
                f"{machine.clock_ghz}GHz",
                str(by_level.get("L1", "-")),
                str(by_level.get("L2", "-")),
                str(by_level.get("L3", "-")),
                f"{machine.memory_latency} cycles",
            )
        )
    return FigureResult(
        figure="Table 1: machine parameters",
        headers=("machine", "cores", "clock", "L1", "L2", "L3", "off-chip"),
        rows=tuple(rows),
        notes="off-chip latencies converted from Table 1's ns at each clock "
        "(~100ns/~60ns/~50ns).",
    )


def table2() -> FigureResult:
    """Table 2: the applications (our scaled kernels)."""
    rows = []
    for w in paper_workloads():
        nest = w.nest()
        rows.append(
            (
                w.name,
                w.suite,
                w.kind,
                f"{w.data_bytes() // 1024}KB",
                nest.iteration_count(),
                len(nest.accesses),
            )
        )
    return FigureResult(
        figure="Table 2: applications",
        headers=("application", "suite", "origin", "data", "iterations", "refs"),
        rows=tuple(rows),
        notes="paper data sets span 4.6MB-2.8GB on real machines; kernels are "
        "scaled with the machines (DESIGN.md, substitutions).",
    )


if __name__ == "__main__":
    print(table1().table())
    print()
    print(table2().table())
