"""Figure 18: deeper on-chip cache hierarchies (Default / Arch-I / Arch-II).

The paper simulates the Figure 12 architectures and finds TopologyAware
performs better (relative to the baselines) the deeper the hierarchy —
the best improvements come on Arch-II.

Like the other forward-looking simulation study (Figure 17), this
experiment enables the simulator's shared-port contention model: Arch-I
and Arch-II carry 16 and 32 cores behind their shared components, and
contention is part of what a cycle-accurate platform such as GEMS
charges schemes that miss more above the shared levels.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.harness import FigureResult, geometric_mean, run_scheme, sim_machine
from repro.topology.machines import arch_i, arch_ii, dunnington
from repro.workloads import paper_workloads


def run(apps: Sequence[str] | None = None) -> FigureResult:
    selected = [w for w in paper_workloads() if apps is None or w.name in apps]
    rows = []
    for machine_builder, label in (
        (dunnington, "Default (Dunnington)"),
        (arch_i, "Arch-I (4 levels)"),
        (arch_ii, "Arch-II (5 levels)"),
    ):
        machine = sim_machine(machine_builder())
        ratios_bp, ratios_ta = [], []
        for app in selected:
            base = run_scheme(app, "base", machine, port_occupancy=2).cycles
            ratios_bp.append(
                run_scheme(app, "base+", machine, port_occupancy=2).cycles / base
            )
            ratios_ta.append(
                run_scheme(app, "ta", machine, port_occupancy=2).cycles / base
            )
        rows.append(
            (
                label,
                round(geometric_mean(ratios_bp), 3),
                round(geometric_mean(ratios_ta), 3),
            )
        )
    return FigureResult(
        figure="Figure 18: deeper hierarchies (vs Base on the same machine)",
        headers=("architecture", "Base+", "TopologyAware"),
        rows=tuple(rows),
        notes="paper: TopologyAware's edge grows with hierarchy depth; "
        "best on Arch-II.",
    )


if __name__ == "__main__":
    print(run().table())
