"""Figure 2: why cache topology matters — galgel versions across machines.

For each execution machine (Harpertown, Nehalem, Dunnington) we run the
three topology-tuned versions of galgel and normalize to the best version
on that machine.  Versions are generated at their native thread counts
and ported naively (folding surplus threads onto cores / leaving surplus
cores idle), exactly the situation the paper's introduction motivates.
The paper observes that the version specialized for the machine at hand
always wins (e.g. the Harpertown version on Nehalem costs ~26%).
"""

from __future__ import annotations

from repro.experiments.harness import FigureResult, run_version, sim_machine
from repro.experiments.versions import version_machine
from repro.topology.machines import commercial_machines
from repro.workloads import workload

#: (pattern, native thread count) — Dunnington versions are 12-threaded.
VERSIONS = (("harpertown", 8), ("nehalem", 8), ("dunnington", 12))


def run(app_name: str = "galgel") -> FigureResult:
    app = workload(app_name)
    rows = []
    for target in commercial_machines():
        target_sim = sim_machine(target)
        cycles = {}
        for pattern, threads in VERSIONS:
            version = sim_machine(version_machine(pattern, threads))
            cycles[pattern] = run_version(app, version, target_sim).cycles
        best = min(cycles.values())
        rows.append(
            (target.name,)
            + tuple(round(cycles[p] / best, 3) for p, _ in VERSIONS)
        )
    return FigureResult(
        figure=f"Figure 2: normalized {app_name} execution time by code version",
        headers=("run on", "harpertown version", "nehalem version", "dunnington version"),
        rows=tuple(rows),
        notes="paper: the version tuned for the execution machine is best in "
        "each group; e.g. the Harpertown version costs ~26% on Nehalem.",
    )


if __name__ == "__main__":
    print(run().table())
