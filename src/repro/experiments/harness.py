"""Shared machinery for the experiment harnesses.

Schemes (Section 4.1):

* ``base``   — original parallelized code (contiguous chunks, original order);
* ``base+``  — Base's distribution + per-core permutation/tiling;
* ``local``  — Base's distribution + Figure 7 local reorganization;
* ``ta``     — the paper's Topology Aware distribution (no local scheduling);
* ``ta+s``   — combined: distribution + local scheduling (Section 3.5.3).

Results are memoized per (workload, machine name, scheme, knobs) because
different figures revisit the same runs; everything is deterministic, so
the cache is safe.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro import obs
from repro.errors import ExperimentError
from repro.mapping import TopologyAwareMapper, base_plan, base_plus_plan, local_plan
from repro.mapping.distribute import MappingResult
from repro.runtime import execute_plan
from repro.sim.engine import SimConfig
from repro.sim.stats import SimResult
from repro.topology.tree import Machine
from repro.util.tables import format_table
from repro.workloads import Workload, workload

#: Every experiment divides cache capacities by this factor (topologies,
#: latencies, associativities and line sizes unchanged) so that Python-
#: speed simulation with megabyte-scale working sets stays tractable.
SIM_SCALE_DENOM = 32

#: Balance threshold used by the experiments.  The paper's default is 10%
#: ("maximum tolerable imbalance"); we run the same algorithm with a
#: tighter 1% window because the bare simulator has none of a real
#: machine's secondary balancing effects (hardware prefetch, memory-level
#: parallelism, OS noise) and execution time is the max over cores, so
#: residual imbalance would otherwise mask the cache effect under study.
BALANCE_THRESHOLD = 0.01

SCHEMES = ("base", "base+", "local", "ta", "ta+s")


def sim_machine(machine: Machine) -> Machine:
    """The simulation-scaled version of a machine."""
    return machine.with_scaled_caches(1.0 / SIM_SCALE_DENOM)


@dataclass(frozen=True)
class FigureResult:
    """Rows plus a rendered table for one paper artifact."""

    figure: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: str = ""

    def table(self) -> str:
        text = format_table(self.headers, self.rows, title=self.figure)
        if self.notes:
            text += "\n" + self.notes
        return text

    def column(self, name: str) -> list:
        try:
            index = self.headers.index(name)
        except ValueError:
            raise ExperimentError(f"no column {name!r} in {self.figure}") from None
        return [row[index] for row in self.rows]


@dataclass
class _Cache:
    results: dict = field(default_factory=dict)
    mappings: dict = field(default_factory=dict)


_CACHE = _Cache()


def clear_cache() -> None:
    _CACHE.results.clear()
    _CACHE.mappings.clear()


#: Environment variable naming a directory for per-figure JSONL traces.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"


@contextmanager
def figure_trace(figure: str):
    """Record a per-figure trace when ``REPRO_TRACE_DIR`` is set.

    Wrap one figure harness run::

        with figure_trace("fig13"):
            fig13_main.run(apps)

    With the environment variable unset this is a pure no-op (no
    recorder installed); set, it writes ``<dir>/<figure>.jsonl`` with
    every span and decision counter of the figure's runs — the artifact
    the CI workflow uploads.  When a recorder is already installed (an
    outer ``obs.tracing`` scope), the outer trace wins and the figure is
    marked by a ``figure`` span instead of a separate file.
    """
    directory = os.environ.get(TRACE_DIR_ENV)
    if obs.enabled() or not directory:
        with obs.span("figure", figure=figure):
            yield
        return
    from repro.obs.sinks import JsonlSink

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{figure}.jsonl")
    with obs.tracing(JsonlSink(path)):
        with obs.span("figure", figure=figure):
            yield


def mapping_for(
    app: Workload,
    mapping_machine: Machine,
    local_scheduling: bool = False,
    block_size: int | None = None,
    balance_threshold: float = BALANCE_THRESHOLD,
    alpha: float = 0.5,
    beta: float = 0.5,
) -> MappingResult:
    """Memoized TopologyAware mapping of one workload for one machine."""
    key = (
        app.name,
        mapping_machine.name,
        local_scheduling,
        block_size,
        balance_threshold,
        alpha,
        beta,
    )
    cached = _CACHE.mappings.get(key)
    if cached is not None:
        obs.count("harness.mapping_memo_hits")
        return cached
    obs.count("harness.mapping_memo_misses")
    mapper = TopologyAwareMapper(
        mapping_machine,
        block_size=block_size if block_size is not None else app.block_size(),
        balance_threshold=balance_threshold,
        alpha=alpha,
        beta=beta,
        local_scheduling=local_scheduling,
    )
    result = mapper.map_nest(app.program(), app.nest())
    _CACHE.mappings[key] = result
    return result


def run_scheme(
    app: Workload | str,
    scheme: str,
    machine: Machine,
    mapping_machine: Machine | None = None,
    block_size: int | None = None,
    balance_threshold: float = BALANCE_THRESHOLD,
    alpha: float = 0.5,
    beta: float = 0.5,
    port_occupancy: int = 0,
) -> SimResult:
    """Run one (workload, scheme) on a machine; memoized.

    ``machine`` must already be simulation-scaled.  ``mapping_machine``
    is the machine the code version is *tuned for* (defaults to the
    execution machine's unscaled topology is not required — mapping
    quality only depends on the topology tree, so passing the scaled
    machine is equivalent); the cross-machine experiment passes a
    different one.
    """
    if isinstance(app, str):
        app = workload(app)
    map_machine = mapping_machine or machine
    key = (
        app.name,
        scheme,
        machine.name,
        map_machine.name,
        block_size,
        balance_threshold,
        alpha,
        beta,
        port_occupancy,
    )
    cached = _CACHE.results.get(key)
    if cached is not None:
        obs.count("harness.result_memo_hits")
        return cached
    obs.count("harness.result_memo_misses")

    with obs.span(
        "experiment.scheme", app=app.name, scheme=scheme, machine=machine.name
    ):
        nest = app.nest()
        if scheme == "base":
            plan = base_plan(nest, map_machine)
        elif scheme == "base+":
            plan = base_plus_plan(nest, map_machine)
        elif scheme == "local":
            mapping = mapping_for(app, map_machine, block_size=block_size,
                                  balance_threshold=balance_threshold)
            plan = local_plan(nest, map_machine, mapping.partition, alpha, beta)
        elif scheme == "ta":
            mapping = mapping_for(app, map_machine, False, block_size,
                                  balance_threshold, alpha, beta)
            plan = mapping.plan()
        elif scheme == "ta+s":
            mapping = mapping_for(app, map_machine, True, block_size,
                                  balance_threshold, alpha, beta)
            plan = mapping.plan()
        else:
            raise ExperimentError(f"unknown scheme {scheme!r}; known: {SCHEMES}")

        config = SimConfig(port_occupancy=port_occupancy) if port_occupancy else None
        result = execute_plan(plan, machine=machine, config=config)
    _CACHE.results[key] = result
    return result


def run_version(
    app: Workload | str, version: Machine, target: Machine
) -> SimResult:
    """Run the TopologyAware *version* tuned for one machine on another.

    The plan is generated at the version machine's native core count and
    ported to the target with :func:`repro.experiments.versions.retarget_plan`
    (folding surplus threads, idling surplus cores), the way naive porting
    behaves; both machines must be simulation-scaled.
    """
    from repro.experiments.versions import retarget_plan

    if isinstance(app, str):
        app = workload(app)
    key = ("version", app.name, version.name, target.name)
    cached = _CACHE.results.get(key)
    if cached is not None:
        return cached
    mapping = mapping_for(app, version)
    plan = retarget_plan(mapping.plan(), target)
    result = execute_plan(plan, machine=target)
    _CACHE.results[key] = result
    return result


def scheme_cycles(
    app: Workload | str, schemes: tuple[str, ...], machine: Machine, **kwargs
) -> dict[str, int]:
    """Cycles of several schemes for one workload on one machine."""
    return {s: run_scheme(app, s, machine, **kwargs).cycles for s in schemes}


def geometric_mean(values: list[float]) -> float:
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values)) if values else float("nan")
