"""Shared machinery for the experiment harnesses.

Schemes (Section 4.1):

* ``base``   — original parallelized code (contiguous chunks, original order);
* ``base+``  — Base's distribution + per-core permutation/tiling;
* ``local``  — Base's distribution + Figure 7 local reorganization;
* ``ta``     — the paper's Topology Aware distribution (no local scheduling);
* ``ta+s``   — combined: distribution + local scheduling (Section 3.5.3).

Results are memoized per (workload, machine name, scheme, knobs) because
different figures revisit the same runs; everything is deterministic, so
the cache is safe.  Two optional layers extend the in-memory memo:

* a persistent disk cache (:mod:`repro.experiments.cache`), switched on
  with :func:`enable_disk_cache` — repeated experiment invocations skip
  simulation entirely;
* *spec recording* (:func:`record_specs`) — run the figure harnesses
  without simulating, collecting the set of uncached runs they need so a
  parallel driver can execute them in worker processes and seed the
  memo (see ``repro.experiments.run_all``).
"""

from __future__ import annotations

import math
import os
from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro import obs
from repro.errors import ExperimentError
from repro.experiments.cache import DiskCache, machine_digest
from repro.mapping import base_plan, base_plus_plan, local_plan
from repro.mapping.distribute import MappingResult

# Submodule imports, not `from repro.pipeline import ...`: this module is
# reachable from `repro.pipeline.core` (via repro.experiments.cache), so
# the pipeline package's __init__ may still be mid-import here.  The
# submodules themselves have no cycle.
from repro.pipeline.knobs import Knobs
from repro.pipeline.store import ArtifactStore
from repro.runtime import execute_plan
from repro.sim.engine import SimConfig
from repro.sim.stats import LevelStats, SimResult
from repro.topology.tree import Machine
from repro.util.tables import format_table
from repro.workloads import Workload, workload

#: Every experiment divides cache capacities by this factor (topologies,
#: latencies, associativities and line sizes unchanged) so that Python-
#: speed simulation with megabyte-scale working sets stays tractable.
SIM_SCALE_DENOM = 32

#: Balance threshold used by the experiments.  The paper's default is 10%
#: ("maximum tolerable imbalance"); we run the same algorithm with a
#: tighter 1% window because the bare simulator has none of a real
#: machine's secondary balancing effects (hardware prefetch, memory-level
#: parallelism, OS noise) and execution time is the max over cores, so
#: residual imbalance would otherwise mask the cache effect under study.
BALANCE_THRESHOLD = 0.01

SCHEMES = ("base", "base+", "local", "ta", "ta+s")


def sim_machine(machine: Machine) -> Machine:
    """The simulation-scaled version of a machine."""
    return machine.with_scaled_caches(1.0 / SIM_SCALE_DENOM)


@dataclass(frozen=True)
class FigureResult:
    """Rows plus a rendered table for one paper artifact."""

    figure: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: str = ""

    def table(self) -> str:
        text = format_table(self.headers, self.rows, title=self.figure)
        if self.notes:
            text += "\n" + self.notes
        return text

    def column(self, name: str) -> list:
        try:
            index = self.headers.index(name)
        except ValueError:
            raise ExperimentError(f"no column {name!r} in {self.figure}") from None
        return [row[index] for row in self.rows]


@dataclass
class _Cache:
    results: dict = field(default_factory=dict)
    mappings: dict = field(default_factory=dict)
    #: Per-stage pipeline artifacts, shared across every mapping the
    #: harness computes: knob sweeps (Figure 18's α/β grid, the balance
    #: ablation) replay unchanged stages instead of recomputing them.
    artifacts: ArtifactStore = field(default_factory=ArtifactStore)


_CACHE = _Cache()


def clear_cache() -> None:
    _CACHE.results.clear()
    _CACHE.mappings.clear()
    _CACHE.artifacts.clear()


def _scheme_knobs(
    scheme: str | None,
    block_size: int | None,
    balance_threshold: float,
    alpha: float,
    beta: float,
) -> Knobs:
    """The canonical knob set a scheme run maps with.

    Every harness key (memo, disk, recorded spec) derives its knob
    component from this one constructor, so the harness cannot drift
    from the service or the pipeline on what "the same configuration"
    means.  ``ta+s`` is the only scheme that schedules locally.
    """
    return Knobs(
        block_size=block_size,
        balance_threshold=balance_threshold,
        alpha=alpha,
        beta=beta,
        local_scheduling=(scheme == "ta+s"),
    )


#: Persistent result store (None = memory-only).  Mappings deliberately
#: stay memory-only: caching results subsumes them for repeat runs, and
#: IterationGroup identity does not survive serialization.
_DISK: DiskCache | None = None

#: While not None, run_scheme/run_version record specs instead of
#: simulating (see :func:`record_specs`).  Maps memo key -> RunSpec so
#: duplicates collapse in call order.
_RECORDING: dict | None = None


def enable_disk_cache(directory: str | None = None) -> DiskCache:
    """Turn on the persistent result cache (see repro.experiments.cache).

    Memoized results are read from and written through to disk until
    :func:`disable_disk_cache`.  Returns the store for inspection.
    """
    global _DISK
    _DISK = DiskCache(directory)
    return _DISK


def disable_disk_cache() -> None:
    """Back to memory-only memoization."""
    global _DISK
    _DISK = None


def disk_cache() -> DiskCache | None:
    """The active persistent store, if any."""
    return _DISK


def _lookup(key: tuple, disk_key: tuple) -> SimResult | None:
    """Memo, then disk.  A disk hit is promoted into the memo."""
    cached = _CACHE.results.get(key)
    if cached is not None:
        obs.count("harness.result_memo_hits")
        return cached
    obs.count("harness.result_memo_misses")
    if _DISK is not None:
        stored = _DISK.get(disk_key)
        if stored is not None:
            obs.count("cache.disk_hits")
            _CACHE.results[key] = stored
            return stored
        obs.count("cache.disk_misses")
    return None


def _store(key: tuple, disk_key: tuple, result: SimResult) -> None:
    _CACHE.results[key] = result
    if _DISK is not None:
        _DISK.put(disk_key, result)


@dataclass(frozen=True)
class RunSpec:
    """One deferred harness run, re-executable in a worker process.

    ``kind`` is ``"scheme"`` (a :func:`run_scheme` call) or ``"version"``
    (a :func:`run_version` call); the remaining fields mirror the
    corresponding call's arguments.  Everything is picklable.
    """

    kind: str
    app: str
    scheme: str | None = None
    machine: Machine | None = None
    mapping_machine: Machine | None = None
    block_size: int | None = None
    balance_threshold: float = BALANCE_THRESHOLD
    alpha: float = 0.5
    beta: float = 0.5
    port_occupancy: int = 0
    version: Machine | None = None
    target: Machine | None = None


def spec_key(spec: RunSpec) -> tuple:
    """The memo key a spec's run would use (mirrors run_scheme/run_version)."""
    if spec.kind == "scheme":
        map_machine = spec.mapping_machine or spec.machine
        knobs = _scheme_knobs(
            spec.scheme,
            spec.block_size,
            spec.balance_threshold,
            spec.alpha,
            spec.beta,
        )
        return (
            spec.app,
            spec.scheme,
            spec.machine.name,
            map_machine.name,
            knobs.as_tuple(),
            spec.port_occupancy,
        )
    return ("version", spec.app, spec.version.name, spec.target.name)


def _spec_disk_key(spec: RunSpec) -> tuple:
    if spec.kind == "scheme":
        map_machine = spec.mapping_machine or spec.machine
        return spec_key(spec) + (
            machine_digest(spec.machine),
            machine_digest(map_machine),
        )
    return spec_key(spec) + (
        machine_digest(spec.version),
        machine_digest(spec.target),
    )


def execute_spec(spec: RunSpec) -> SimResult:
    """Run one recorded spec (used by parallel workers)."""
    if spec.kind == "scheme":
        return run_scheme(
            spec.app,
            spec.scheme,
            spec.machine,
            mapping_machine=spec.mapping_machine,
            block_size=spec.block_size,
            balance_threshold=spec.balance_threshold,
            alpha=spec.alpha,
            beta=spec.beta,
            port_occupancy=spec.port_occupancy,
        )
    return run_version(spec.app, spec.version, spec.target)


def seed_result(spec: RunSpec, result: SimResult) -> None:
    """Install a worker-computed result into the memo (and disk store)."""
    key = spec_key(spec)
    _CACHE.results.setdefault(key, result)
    if _DISK is not None:
        _DISK.put(_spec_disk_key(spec), result)


def record_specs(fn: Callable[[], object]) -> list[RunSpec]:
    """Run ``fn`` in recording mode; return the runs it would simulate.

    While recording, an uncached :func:`run_scheme`/:func:`run_version`
    call does not simulate: it records a :class:`RunSpec` and returns a
    placeholder result (all counts 1) so the figure code runs through.
    Placeholders are never stored in the memo; cached and disk-cached
    runs still return their real results.  :func:`run_custom` computes
    inline even while recording — its compute closure cannot be shipped
    to a worker.
    """
    global _RECORDING
    if _RECORDING is not None:
        raise ExperimentError("spec recording is already active")
    _RECORDING = {}
    try:
        fn()
        return list(_RECORDING.values())
    finally:
        _RECORDING = None


def _placeholder_result(label: str, machine: Machine) -> SimResult:
    levels = tuple(LevelStats(name, 1, 1) for name in machine.cache_levels())
    return SimResult(
        label=label,
        machine_name=machine.name,
        cycles=1,
        core_cycles=(1,) * machine.num_cores,
        levels=levels,
        memory_accesses=1,
        total_accesses=2,
        barriers=0,
        barrier_cycles=0,
    )


#: Environment variable naming a directory for per-figure JSONL traces.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"


@contextmanager
def figure_trace(figure: str):
    """Record a per-figure trace when ``REPRO_TRACE_DIR`` is set.

    Wrap one figure harness run::

        with figure_trace("fig13"):
            fig13_main.run(apps)

    With the environment variable unset this is a pure no-op (no
    recorder installed); set, it writes ``<dir>/<figure>.jsonl`` with
    every span and decision counter of the figure's runs — the artifact
    the CI workflow uploads.  When a recorder is already installed (an
    outer ``obs.tracing`` scope), the outer trace wins and the figure is
    marked by a ``figure`` span instead of a separate file.
    """
    directory = os.environ.get(TRACE_DIR_ENV)
    if obs.enabled() or not directory:
        with obs.span("figure", figure=figure):
            yield
        return
    from repro.obs.sinks import JsonlSink

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{figure}.jsonl")
    with obs.tracing(JsonlSink(path)):
        with obs.span("figure", figure=figure):
            yield


def mapping_for(
    app: Workload,
    mapping_machine: Machine,
    local_scheduling: bool = False,
    block_size: int | None = None,
    balance_threshold: float = BALANCE_THRESHOLD,
    alpha: float = 0.5,
    beta: float = 0.5,
) -> MappingResult:
    """Memoized TopologyAware mapping of one workload for one machine.

    Sits on two tiers: the whole-:class:`MappingResult` memo keyed by the
    canonical knob tuple, and under it the shared per-stage artifact
    store — so even a memo miss (say, new α/β) replays tagging,
    dependence analysis and distribution from cache.
    """
    knobs = Knobs(
        block_size=block_size if block_size is not None else app.block_size(),
        balance_threshold=balance_threshold,
        alpha=alpha,
        beta=beta,
        local_scheduling=local_scheduling,
    )
    key = (app.name, mapping_machine.name, knobs.as_tuple())
    cached = _CACHE.mappings.get(key)
    if cached is not None:
        obs.count("harness.mapping_memo_hits")
        return cached
    obs.count("harness.mapping_memo_misses")
    from repro.pipeline.core import MappingPipeline

    pipeline = MappingPipeline(mapping_machine, knobs, store=_CACHE.artifacts)
    result = pipeline.map_nest(app.program(), app.nest())
    _CACHE.mappings[key] = result
    return result


def run_scheme(
    app: Workload | str,
    scheme: str,
    machine: Machine,
    mapping_machine: Machine | None = None,
    block_size: int | None = None,
    balance_threshold: float = BALANCE_THRESHOLD,
    alpha: float = 0.5,
    beta: float = 0.5,
    port_occupancy: int = 0,
) -> SimResult:
    """Run one (workload, scheme) on a machine; memoized.

    ``machine`` must already be simulation-scaled.  ``mapping_machine``
    is the machine the code version is *tuned for* and defaults to the
    execution machine.  Passing the scaled topology there is fine:
    mapping quality depends only on the shape of the cache tree, which
    capacity scaling preserves.  The cross-machine experiment passes a
    different machine explicitly.
    """
    if isinstance(app, str):
        app = workload(app)
    map_machine = mapping_machine or machine
    knobs = _scheme_knobs(scheme, block_size, balance_threshold, alpha, beta)
    key = (
        app.name,
        scheme,
        machine.name,
        map_machine.name,
        knobs.as_tuple(),
        port_occupancy,
    )
    disk_key = key + (machine_digest(machine), machine_digest(map_machine))
    cached = _lookup(key, disk_key)
    if cached is not None:
        return cached
    if _RECORDING is not None:
        _RECORDING.setdefault(
            key,
            RunSpec(
                kind="scheme",
                app=app.name,
                scheme=scheme,
                machine=machine,
                mapping_machine=mapping_machine,
                block_size=block_size,
                balance_threshold=balance_threshold,
                alpha=alpha,
                beta=beta,
                port_occupancy=port_occupancy,
            ),
        )
        return _placeholder_result(f"{app.name}/{scheme}", machine)

    with obs.span(
        "experiment.scheme", app=app.name, scheme=scheme, machine=machine.name
    ):
        nest = app.nest()
        if scheme == "base":
            plan = base_plan(nest, map_machine)
        elif scheme == "base+":
            plan = base_plus_plan(nest, map_machine)
        elif scheme == "local":
            mapping = mapping_for(app, map_machine, block_size=block_size,
                                  balance_threshold=balance_threshold)
            plan = local_plan(nest, map_machine, mapping.partition, alpha, beta)
        elif scheme == "ta":
            mapping = mapping_for(app, map_machine, False, block_size,
                                  balance_threshold, alpha, beta)
            plan = mapping.plan()
        elif scheme == "ta+s":
            mapping = mapping_for(app, map_machine, True, block_size,
                                  balance_threshold, alpha, beta)
            plan = mapping.plan()
        else:
            raise ExperimentError(f"unknown scheme {scheme!r}; known: {SCHEMES}")

        config = SimConfig(port_occupancy=port_occupancy) if port_occupancy else None
        result = execute_plan(plan, machine=machine, config=config)
    _store(key, disk_key, result)
    return result


def run_version(
    app: Workload | str, version: Machine, target: Machine
) -> SimResult:
    """Run the TopologyAware *version* tuned for one machine on another.

    The plan is generated at the version machine's native core count and
    ported to the target with :func:`repro.experiments.versions.retarget_plan`
    (folding surplus threads, idling surplus cores), the way naive porting
    behaves; both machines must be simulation-scaled.
    """
    from repro.experiments.versions import retarget_plan

    if isinstance(app, str):
        app = workload(app)
    key = ("version", app.name, version.name, target.name)
    disk_key = key + (machine_digest(version), machine_digest(target))
    cached = _lookup(key, disk_key)
    if cached is not None:
        return cached
    if _RECORDING is not None:
        _RECORDING.setdefault(
            key,
            RunSpec(kind="version", app=app.name, version=version, target=target),
        )
        return _placeholder_result(f"{app.name}/version", target)
    mapping = mapping_for(app, version)
    plan = retarget_plan(mapping.plan(), target)
    result = execute_plan(plan, machine=target)
    _store(key, disk_key, result)
    return result


def run_custom(
    tag: tuple, machine: Machine, compute: Callable[[], SimResult]
) -> SimResult:
    """Memoize an arbitrary deterministic run under ``("custom",) + tag``.

    For experiment variants that build their own plans instead of going
    through a scheme (the Figure 20 optimal rows, the clustering
    ablation's KL variant).  ``tag`` must contain every knob that
    determines the result; ``machine`` is digested into the disk key.
    The compute callable runs inline — also during spec recording, since
    a closure cannot be shipped to a worker — and the result joins both
    the in-memory memo and the persistent store.
    """
    key = ("custom",) + tuple(tag)
    disk_key = key + (machine_digest(machine),)
    cached = _lookup(key, disk_key)
    if cached is not None:
        return cached
    result = compute()
    _store(key, disk_key, result)
    return result


def scheme_cycles(
    app: Workload | str, schemes: tuple[str, ...], machine: Machine, **kwargs
) -> dict[str, int]:
    """Cycles of several schemes for one workload on one machine."""
    return {s: run_scheme(app, s, machine, **kwargs).cycles for s in schemes}


def geometric_mean(values: list[float]) -> float:
    """Geometric mean in log space.

    Summing logs instead of multiplying keeps the intermediate in a
    sane range: a product of a few hundred large ratios overflows a
    float to ``inf`` (and underflows to 0.0 for small ones), while the
    log sum is exact to ~1 ulp per term.  Zeros short-circuit (their
    product is 0); negative inputs have no real geometric mean and
    raise ``ValueError``.
    """
    if not values:
        return float("nan")
    if any(v == 0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
