"""Machine *versions* for the cross-machine experiments (Figures 2 and 14).

"The Harpertown version of the code" means: iterations distributed for
Harpertown's cache topology.  When that version runs on a machine with a
different core count, the paper regenerates it at the target thread count
("the Dunnington version is executed using 8 threads, 1 thread per core,
when ported to the other machines"), keeping the *sharing pattern* of the
source topology.  :func:`version_machine` builds exactly that: the source
machine's level structure and cache specs instantiated at the target's
core count.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.topology.cache import CacheSpec
from repro.topology.machines import KB, MB, _uniform_tree
from repro.topology.tree import Machine


def retarget_plan(plan, target: Machine):
    """Port a plan across core counts, the way naive porting does.

    More plan cores than target cores: fold the surplus cores' work onto
    the target cores round-robin (running a 12-thread version with 12
    threads on 8 cores).  Fewer: the extra target cores idle (an 8-thread
    version leaves 4 Dunnington cores unused).  Equal: unchanged.
    """
    from repro.mapping.distribute import ExecutablePlan

    n_plan = len(plan.rounds)
    n_target = target.num_cores
    if n_plan == n_target:
        return ExecutablePlan(target, plan.nest, plan.rounds, plan.label)
    if n_plan < n_target:
        num_rounds = max((len(r) for r in plan.rounds), default=0)
        empty = tuple(() for _ in range(num_rounds))
        rounds = plan.rounds + tuple(empty for _ in range(n_target - n_plan))
        return ExecutablePlan(target, plan.nest, rounds, plan.label)
    num_rounds = max(len(r) for r in plan.rounds)
    folded: list[list[tuple]] = [
        [() for _ in range(num_rounds)] for _ in range(n_target)
    ]
    for core, core_rounds in enumerate(plan.rounds):
        home = core % n_target
        for index, rnd in enumerate(core_rounds):
            folded[home][index] = tuple(folded[home][index]) + tuple(rnd)
    rounds = tuple(tuple(core_rounds) for core_rounds in folded)
    return ExecutablePlan(target, plan.nest, rounds, plan.label)


def version_machine(pattern: str, num_cores: int) -> Machine:
    """A ``pattern``-topology machine with ``num_cores`` cores."""
    if num_cores % 2:
        raise ExperimentError("version machines need an even core count")
    half = num_cores // 2
    if pattern == "harpertown":
        l1 = CacheSpec("L1", 32 * KB, 8, 64, 3)
        l2 = CacheSpec("L2", 6 * MB, 24, 64, 15)
        root = _uniform_tree(num_cores, [(l1, 1), (l2, 2)])
        return Machine(f"harpertown@{num_cores}", 3.2, 320, root, sockets=2)
    if pattern == "nehalem":
        l1 = CacheSpec("L1", 32 * KB, 8, 64, 4)
        l2 = CacheSpec("L2", 256 * KB, 8, 64, 10)
        l3 = CacheSpec("L3", 8 * MB, 16, 64, 35)
        root = _uniform_tree(num_cores, [(l1, 1), (l2, 1), (l3, half)])
        return Machine(f"nehalem@{num_cores}", 2.9, 174, root, sockets=2)
    if pattern == "dunnington":
        l1 = CacheSpec("L1", 32 * KB, 8, 64, 4)
        l2 = CacheSpec("L2", 3 * MB, 12, 64, 10)
        l3 = CacheSpec("L3", 12 * MB, 16, 64, 36)
        root = _uniform_tree(num_cores, [(l1, 1), (l2, 2), (l3, half)])
        return Machine(f"dunnington@{num_cores}", 2.4, 120, root, sockets=2)
    raise ExperimentError(f"unknown version pattern {pattern!r}")
