"""Ablation: greedy dot-product merging vs Kernighan-Lin-refined cuts.

The paper's Figure 6 clusters each tree level by greedy merging; classic
graph partitioning would refine every two-way cut with KL swaps.  This
ablation maps each workload both ways on Dunnington and compares the
simulated cycles — quantifying how much headroom the greedy merge leaves.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.harness import (
    BALANCE_THRESHOLD,
    FigureResult,
    geometric_mean,
    run_custom,
    run_scheme,
    sim_machine,
)
from repro.mapping import TopologyAwareMapper
from repro.runtime import execute_plan
from repro.topology.machines import dunnington
from repro.workloads import paper_workloads

DEFAULT_APPS = ("galgel", "equake", "facesim", "namd", "h264", "applu")


def run(apps: Sequence[str] | None = None) -> FigureResult:
    names = tuple(apps) if apps is not None else DEFAULT_APPS
    selected = [w for w in paper_workloads() if w.name in names]
    machine = sim_machine(dunnington())
    rows = []
    ratios = {"greedy": [], "kl": []}
    for app in selected:
        base = run_scheme(app, "base", machine).cycles
        row = [app.name]
        for strategy in ("greedy", "kl"):

            def compute(app=app, strategy=strategy):
                mapper = TopologyAwareMapper(
                    machine,
                    block_size=app.block_size(),
                    balance_threshold=BALANCE_THRESHOLD,
                    cluster_strategy=strategy,
                )
                plan = mapper.map_nest(app.program(), app.nest()).plan()
                return execute_plan(plan)

            tag = ("ablation-clustering", app.name, machine.name, strategy,
                   BALANCE_THRESHOLD)
            ratio = run_custom(tag, machine, compute).cycles / base
            ratios[strategy].append(ratio)
            row.append(round(ratio, 3))
        rows.append(tuple(row))
    rows.append(
        ("MEAN",)
        + tuple(round(geometric_mean(ratios[s]), 3) for s in ("greedy", "kl"))
    )
    return FigureResult(
        figure="Ablation: clustering strategy (Dunnington, vs Base)",
        headers=("application", "greedy merge", "greedy + KL cuts"),
        rows=tuple(rows),
        notes="the paper uses the greedy merge; KL refinement of two-way "
        "cuts quantifies the remaining partitioning headroom.",
    )


if __name__ == "__main__":
    print(run().table())
