"""Figure 20: partial-hierarchy versions and the optimal mapping (Arch-I).

Two questions: (a) must the *entire* hierarchy be considered?  The paper
compares TopologyAware restricted to L1+L2 and to L1+L2+L3 against the
full L1..L4 version (full wins by 21.8% and 12.7% respectively); (b) how
far is the heuristic from an optimal group-to-core mapping (ILP in the
paper, ~7.6% gap)?  Our optimal stand-in is simulated annealing over the
cache-tree sharing objective, seeded with the heuristic's own assignment
(see repro.mapping.optimal).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.harness import (
    FigureResult,
    geometric_mean,
    mapping_for,
    run_custom,
    run_scheme,
    sim_machine,
)
from repro.mapping.distribute import ExecutablePlan
from repro.mapping.optimal import anneal_assignment, sharing_cost
from repro.mapping.schedule import dependence_only_schedule
from repro.runtime import execute_plan
from repro.topology.machines import arch_i
from repro.workloads import paper_workloads


def _optimal_cycles(app, machine) -> int:
    def compute():
        mapping = mapping_for(app, machine)
        assignment = anneal_assignment(
            [g for groups in mapping.assignments for g in groups],
            machine,
            cost=sharing_cost,
            start=mapping.assignments,
            iterations=3000,
        )
        rounds = dependence_only_schedule(assignment, machine, mapping.graph)
        plan = ExecutablePlan.from_group_rounds(machine, app.nest(), rounds, "optimal")
        return execute_plan(plan, machine=machine)

    tag = ("fig20-optimal", app.name, machine.name, 3000)
    return run_custom(tag, machine, compute).cycles


def run(apps: Sequence[str] | None = None) -> FigureResult:
    selected = [w for w in paper_workloads() if apps is None or w.name in apps]
    full = sim_machine(arch_i())
    two = full.truncated(2)
    three = full.truncated(3)
    ratios: dict[str, list[float]] = {"L1+L2": [], "L1+L2+L3": [], "full": [], "optimal": []}
    for app in selected:
        base = run_scheme(app, "base", full).cycles
        ratios["L1+L2"].append(
            run_scheme(app, "ta", full, mapping_machine=two).cycles / base
        )
        ratios["L1+L2+L3"].append(
            run_scheme(app, "ta", full, mapping_machine=three).cycles / base
        )
        ratios["full"].append(run_scheme(app, "ta", full).cycles / base)
        ratios["optimal"].append(_optimal_cycles(app, full) / base)
    rows = [
        (label, round(geometric_mean(values), 3)) for label, values in ratios.items()
    ]
    return FigureResult(
        figure="Figure 20: hierarchy depth used by the mapper + optimal (Arch-I, vs Base)",
        headers=("version", "normalized cycles"),
        rows=tuple(rows),
        notes="paper: full hierarchy beats L1+L2 by 21.8% and L1+L2+L3 by "
        "12.7%; the heuristic is within ~7.6% of optimal.",
    )


if __name__ == "__main__":
    print(run().table())
