"""Figure 19: halved cache capacities (Dunnington topology).

The paper halves every cache component's capacity — raising the
data-to-cache ratio — and reports Base+ / TopologyAware improvements of
~21%/33% over Base, rising to 29%/41% when loop distribution is combined
with loop scheduling; the gaps are wider than at full capacity.

This experiment runs at its own simulation scale: the "full capacity"
configuration is Dunnington at twice the standard experiment scale
(matching the paper's regime, where full-size caches absorb a good part
of the working set) and the "halved" configuration cuts every component
in half from there — which lands exactly on the standard scale used by
the other figures.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.harness import (
    SIM_SCALE_DENOM,
    FigureResult,
    geometric_mean,
    run_scheme,
)
from repro.topology.machines import dunnington
from repro.workloads import paper_workloads

SCHEMES = ("base+", "ta", "ta+s")


def run(apps: Sequence[str] | None = None) -> FigureResult:
    selected = [w for w in paper_workloads() if apps is None or w.name in apps]
    full = dunnington().with_scaled_caches(2.0 / SIM_SCALE_DENOM)
    halved = dunnington().with_scaled_caches(1.0 / SIM_SCALE_DENOM)
    rows = []
    for machine, label in ((full, "full capacity"), (halved, "halved capacity")):
        ratios: dict[str, list[float]] = {s: [] for s in SCHEMES}
        for app in selected:
            base = run_scheme(app, "base", machine).cycles
            for scheme in SCHEMES:
                ratios[scheme].append(run_scheme(app, scheme, machine).cycles / base)
        rows.append(
            (label,) + tuple(round(geometric_mean(ratios[s]), 3) for s in SCHEMES)
        )
    return FigureResult(
        figure="Figure 19: halved cache capacities (Dunnington, vs Base)",
        headers=("configuration", "Base+", "TopologyAware", "Combined"),
        rows=tuple(rows),
        notes="paper (halved): Base+ ~0.79, TopologyAware ~0.67, combined "
        "~0.59 of Base; the improvements grow when capacities shrink.",
    )


if __name__ == "__main__":
    print(run().table())
