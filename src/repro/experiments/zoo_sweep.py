"""Machine-zoo sweep: the paper's schemes on real-hardware topologies.

The figures reproduce the paper on its own machines; this step runs the
TopologyAware mapper across the ingested fixture corpus (see
``tests/topology/fixtures/``) — NUMA L3 complexes, big.LITTLE asymmetry,
SMT servers, holey cpu numbering — and reports the TA speedup over Base
per machine.  It is the regression net for the ingest pipeline: every
zoo machine must map, simulate, and win (or at worst tie) end to end.

``--machine`` on the driver narrows the sweep to one spec; any string
:func:`repro.topology.resolve.resolve_machine` accepts works, so
``run_all --machine zoo:epyc2p`` and ``--machine sysfs:/sys`` both do
the obvious thing.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.harness import (
    BALANCE_THRESHOLD,
    FigureResult,
    geometric_mean,
    run_scheme,
    sim_machine,
)
from repro.topology.resolve import resolve_machine
from repro.topology.tree import Machine
from repro.workloads import all_workloads, irregular_workloads

#: Apps exercised per zoo machine (a spread of sharing patterns; the
#: full per-app matrix lives in the paper figures).
SWEEP_APPS = ("galgel", "equake", "facesim", "namd")


def _machines(specs: Sequence[str] | None) -> list[Machine]:
    if specs:
        return [resolve_machine(spec) for spec in specs]
    from repro.topology.ingest.zoo import zoo_names

    return [resolve_machine(f"zoo:{name}") for name in zoo_names()]


def run(
    apps: Sequence[str] | None = None,
    machines: Sequence[str] | None = None,
) -> FigureResult:
    selected = [
        w for w in all_workloads()
        if w.name in (apps if apps is not None else SWEEP_APPS)
    ]
    rows = []
    for machine in _machines(machines):
        scaled = sim_machine(machine)
        speedups = []
        for app in selected:
            base = run_scheme(app, "base", scaled,
                              balance_threshold=BALANCE_THRESHOLD).cycles
            ta = run_scheme(app, "ta", scaled,
                            balance_threshold=BALANCE_THRESHOLD).cycles
            speedups.append(base / ta if ta else 1.0)
        shape = "uniform" if machine.is_level_uniform() else "asymmetric"
        rows.append((
            machine.name,
            machine.num_cores,
            shape,
            len(machine.cache_nodes()),
            f"{geometric_mean(speedups):.3f}" if speedups else "n/a",
        ))
    return FigureResult(
        figure="Machine zoo: TA speedup over Base on ingested topologies",
        headers=("machine", "cores", "tree", "caches", "TA speedup (geo)"),
        rows=tuple(rows),
        notes="machines ingested from sysfs fixture dumps "
        "(tests/topology/fixtures); speedup is geomean over "
        f"{', '.join(w.name for w in selected)}."
        if rows else "no fixture corpus found; run scripts/gen_zoo_fixtures.py",
    )


def run_irregular(machines: Sequence[str] | None = None) -> FigureResult:
    """The irregular suite across the zoo: TA over Base per workload.

    The transpose of :func:`run`: one row per *workload*, geomean over
    the zoo machines.  These kernels have data-dependent subscripts, so
    every run here exercises the trace-based tagging fallback end to end
    (tag from a recorded trace → cluster → distribute → schedule → sim).
    Parity is the honest floor, not a failure: an irregular kernel whose
    sharing has no block structure gives the mapper nothing to place
    (spmv_banded's per-element jitter), while bank- or patch-clustered
    sharing rewards placement the same way the affine mirrors do.
    """
    resolved = _machines(machines)
    rows = []
    for app in irregular_workloads():
        speedups = []
        for machine in resolved:
            scaled = sim_machine(machine)
            base = run_scheme(app, "base", scaled,
                              balance_threshold=BALANCE_THRESHOLD).cycles
            ta = run_scheme(app, "ta", scaled,
                            balance_threshold=BALANCE_THRESHOLD).cycles
            speedups.append(base / ta if ta else 1.0)
        nest = app.nest()
        rows.append((
            app.name,
            nest.iteration_count(),
            len(nest.accesses),
            f"{min(speedups):.3f}" if speedups else "n/a",
            f"{max(speedups):.3f}" if speedups else "n/a",
            f"{geometric_mean(speedups):.3f}" if speedups else "n/a",
        ))
    return FigureResult(
        figure="Machine zoo, irregular suite: TA over Base per workload",
        headers=("workload", "iterations", "refs", "min", "max",
                 "TA speedup (geo)"),
        rows=tuple(rows),
        notes="trace-tagged kernels (indirect subscripts); geomean over "
        f"{len(resolved)} zoo machines."
        if rows else "no fixture corpus found; run scripts/gen_zoo_fixtures.py",
    )


if __name__ == "__main__":
    print(run().table())
    print(run_irregular().table())
