"""Figure 13: the headline result — Base / Base+ / TopologyAware on the
three commercial machines, all twelve applications.

The paper reports average improvements of TopologyAware over Base / Base+
of 28%/16% (Harpertown), 29%/17% (Nehalem), 30%/21% (Dunnington), and, on
Dunnington, cache-miss reductions over Base of 18% (L1), 39% (L2), 47%
(L3) — 16%/31%/37% over Base+.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.harness import (
    FigureResult,
    geometric_mean,
    run_scheme,
    sim_machine,
)
from repro.topology.machines import commercial_machines
from repro.workloads import paper_workloads

SCHEMES = ("base", "base+", "ta")


def run(apps: Sequence[str] | None = None) -> FigureResult:
    selected = [w for w in paper_workloads() if apps is None or w.name in apps]
    machines = [sim_machine(m) for m in commercial_machines()]
    rows = []
    ratios: dict[tuple[str, str], list[float]] = {}
    for app in selected:
        row = [app.name]
        for machine in machines:
            base = run_scheme(app, "base", machine).cycles
            for scheme in ("base+", "ta"):
                ratio = run_scheme(app, scheme, machine).cycles / base
                row.append(round(ratio, 3))
                ratios.setdefault((machine.name, scheme), []).append(ratio)
        rows.append(tuple(row))

    avg_row = ["MEAN"]
    for machine in machines:
        for scheme in ("base+", "ta"):
            avg_row.append(round(geometric_mean(ratios[(machine.name, scheme)]), 3))
    rows.append(tuple(avg_row))

    headers = ["application"]
    for machine in machines:
        short = machine.name.split("-x")[0][:4]
        headers += [f"{short}:base+", f"{short}:ta"]
    return FigureResult(
        figure="Figure 13: execution cycles normalized to Base",
        headers=tuple(headers),
        rows=tuple(rows),
        notes="paper means (ta vs base / ta vs base+): harpertown 0.72/0.84, "
        "nehalem 0.71/0.83, dunnington 0.70/0.79.",
    )


def miss_reductions(apps: Sequence[str] | None = None) -> FigureResult:
    """The Dunnington cache-miss reduction companion numbers."""
    from repro.topology.machines import dunnington

    selected = [w for w in paper_workloads() if apps is None or w.name in apps]
    machine = sim_machine(dunnington())
    levels = ("L1", "L2", "L3")
    sums: dict[tuple[str, str], int] = {}
    for app in selected:
        for scheme in SCHEMES:
            result = run_scheme(app, scheme, machine)
            for level in levels:
                key = (scheme, level)
                sums[key] = sums.get(key, 0) + result.level(level).misses
    rows = []
    for level in levels:
        vs_base = 1 - sums[("ta", level)] / sums[("base", level)]
        vs_bp = 1 - sums[("ta", level)] / sums[("base+", level)]
        rows.append((level, f"{100 * vs_base:.1f}%", f"{100 * vs_bp:.1f}%"))
    return FigureResult(
        figure="Figure 13 companion: Dunnington miss reductions by TopologyAware",
        headers=("level", "vs Base", "vs Base+"),
        rows=tuple(rows),
        notes="paper: 18%/39%/47% vs Base and 16%/31%/37% vs Base+ (L1/L2/L3).",
    )


if __name__ == "__main__":
    print(run().table())
    print()
    print(miss_reductions().table())
