"""Figure 16: sensitivity to the data block size (Dunnington).

The paper's default block size is 2KB; smaller blocks give finer-grain
clustering and better performance at the cost of compilation time (moving
from 2KB to 256-byte blocks grew compile time by more than 80%).  We
sweep multiples of each workload's default block size and report both the
normalized cycles and the mapping (compile) time.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.experiments.harness import (
    BALANCE_THRESHOLD,
    FigureResult,
    geometric_mean,
    run_scheme,
    sim_machine,
)
from repro.mapping import TopologyAwareMapper
from repro.topology.machines import dunnington
from repro.workloads import paper_workloads

FACTORS = (4.0, 2.0, 1.0, 0.5)


def run(apps: Sequence[str] | None = None) -> FigureResult:
    selected = [w for w in paper_workloads() if apps is None or w.name in apps]
    machine = sim_machine(dunnington())
    rows = []
    for factor in FACTORS:
        ratios = []
        compile_time = 0.0
        for app in selected:
            block = max(64, int(app.block_size() * factor) // 64 * 64)
            base = run_scheme(app, "base", machine).cycles
            t0 = time.perf_counter()
            mapper = TopologyAwareMapper(
                machine, block_size=block, balance_threshold=BALANCE_THRESHOLD
            )
            result = mapper.map_nest(app.program(), app.nest())
            compile_time += time.perf_counter() - t0
            cycles = run_scheme(app, "ta", machine, block_size=block).cycles
            ratios.append(cycles / base)
            del result
        rows.append(
            (f"{factor:g}x default", round(geometric_mean(ratios), 3), round(compile_time, 2))
        )
    return FigureResult(
        figure="Figure 16: block size sensitivity (Dunnington, TopologyAware vs Base)",
        headers=("block size", "normalized cycles", "mapping time (s)"),
        rows=tuple(rows),
        notes="paper: smaller blocks perform better but compile slower "
        "(2KB -> 256B grew compile time by >80%).",
    )


if __name__ == "__main__":
    print(run().table())
