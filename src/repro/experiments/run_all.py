"""Run every experiment and print the full report.

Usage::

    python -m repro.experiments.run_all            # everything (slow)
    python -m repro.experiments.run_all --quick    # 6-app subset
    python -m repro.experiments.run_all --charts   # + ASCII bar charts

The shared result cache makes later figures cheap where they revisit the
same (workload, machine, scheme) runs.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import harness, tables
from repro.experiments import (
    ablation_alpha_beta,
    ablation_clustering,
    ablation_compile_time,
    ablation_dynamic,
    fig02_motivation,
    fig13_main,
    fig14_cross_machine,
    fig15_scheduling,
    fig16_blocksize,
    fig17_cores,
    fig18_deep_hierarchies,
    fig19_small_caches,
    fig20_levels_optimal,
)

QUICK_APPS = ("galgel", "equake", "facesim", "namd", "h264", "applu")


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    quick = "--quick" in argv
    charts = "--charts" in argv
    apps = QUICK_APPS if quick else None

    steps = [
        ("Table 1", lambda: tables.table1()),
        ("Table 2", lambda: tables.table2()),
        ("Figure 2", lambda: fig02_motivation.run()),
        ("Figure 13", lambda: fig13_main.run(apps)),
        ("Figure 13 (misses)", lambda: fig13_main.miss_reductions(apps)),
        ("Figure 14", lambda: fig14_cross_machine.run(apps)),
        ("Figure 15", lambda: fig15_scheduling.run(apps)),
        ("Figure 16", lambda: fig16_blocksize.run(apps)),
        ("Figure 17", lambda: fig17_cores.run(apps)),
        ("Figure 18", lambda: fig18_deep_hierarchies.run(apps)),
        ("Figure 19", lambda: fig19_small_caches.run(apps)),
        ("Figure 20", lambda: fig20_levels_optimal.run(apps)),
        ("Ablation a/b", lambda: ablation_alpha_beta.run()),
        ("Ablation compile time", lambda: ablation_compile_time.run(apps)),
        ("Ablation dynamic", lambda: ablation_dynamic.run(apps)),
        ("Ablation clustering", lambda: ablation_clustering.run(apps)),
    ]
    for label, runner in steps:
        t0 = time.perf_counter()
        # With REPRO_TRACE_DIR set, each step writes <dir>/<slug>.jsonl.
        slug = label.lower().replace(" ", "_").replace("(", "").replace(")", "")
        with harness.figure_trace(slug):
            result = runner()
        elapsed = time.perf_counter() - t0
        print(result.table())
        if charts:
            _maybe_chart(result)
        print(f"[{label}: {elapsed:.1f}s]")
        print()
    return 0


def _maybe_chart(result) -> None:
    """Chart the last numeric column, when one exists."""
    from repro.errors import ExperimentError
    from repro.experiments.charts import figure_chart

    for header in reversed(result.headers):
        try:
            chart = figure_chart(result, header)
        except ExperimentError:
            continue
        print()
        print(chart)
        return


if __name__ == "__main__":
    raise SystemExit(main())
