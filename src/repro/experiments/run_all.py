"""Run every experiment and print the full report.

Usage::

    python -m repro.experiments.run_all               # everything
    python -m repro.experiments.run_all --quick       # 6-app subset
    python -m repro.experiments.run_all --charts      # + ASCII bar charts
    python -m repro.experiments.run_all --jobs 8      # parallel prewarm
    python -m repro.experiments.run_all --only fig13  # one step

Three layers keep repeat invocations fast:

* the in-memory memo shares runs between figures within one invocation;
* the persistent disk cache (on by default; ``--no-cache`` bypasses it,
  ``repro cache clear`` wipes it) makes a *re*-invocation near-instant;
* with ``--jobs N > 1`` the driver first runs every figure in spec
  recording mode — collecting the simulation runs they need without
  executing them — then fans the recorded specs over a process pool and
  seeds the memo with the workers' results.  The figures then render
  serially from the warm memo, so output is byte-identical to a serial
  run.  Workers also ship their obs counters back, keeping traces
  meaningful.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro import obs
from repro.experiments import harness, tables
from repro.experiments import (
    ablation_alpha_beta,
    ablation_clustering,
    ablation_compile_time,
    ablation_dynamic,
    fig02_motivation,
    fig13_main,
    fig14_cross_machine,
    fig15_scheduling,
    fig16_blocksize,
    fig17_cores,
    fig18_deep_hierarchies,
    fig19_small_caches,
    fig20_levels_optimal,
    zoo_sweep,
)

QUICK_APPS = ("galgel", "equake", "facesim", "namd", "h264", "applu")


def _steps(apps, machines=None):
    zoo_apps = None
    if apps is not None:
        zoo_apps = tuple(a for a in apps if a in zoo_sweep.SWEEP_APPS) or None
    return [
        ("Table 1", lambda: tables.table1()),
        ("Table 2", lambda: tables.table2()),
        ("Figure 2", lambda: fig02_motivation.run()),
        ("Figure 13", lambda: fig13_main.run(apps)),
        ("Figure 13 (misses)", lambda: fig13_main.miss_reductions(apps)),
        ("Figure 14", lambda: fig14_cross_machine.run(apps)),
        ("Figure 15", lambda: fig15_scheduling.run(apps)),
        ("Figure 16", lambda: fig16_blocksize.run(apps)),
        ("Figure 17", lambda: fig17_cores.run(apps)),
        ("Figure 18", lambda: fig18_deep_hierarchies.run(apps)),
        ("Figure 19", lambda: fig19_small_caches.run(apps)),
        ("Figure 20", lambda: fig20_levels_optimal.run(apps)),
        ("Machine zoo", lambda: zoo_sweep.run(zoo_apps, machines)),
        ("Machine zoo (irregular)", lambda: zoo_sweep.run_irregular(machines)),
        ("Ablation a/b", lambda: ablation_alpha_beta.run()),
        ("Ablation compile time", lambda: ablation_compile_time.run(apps)),
        ("Ablation dynamic", lambda: ablation_dynamic.run(apps)),
        ("Ablation clustering", lambda: ablation_clustering.run(apps)),
    ]


def _slug(label: str) -> str:
    return label.lower().replace(" ", "_").replace("(", "").replace(")", "")


def _matches(needle: str, label: str) -> bool:
    """Substring match against the label and its slug, separator-blind.

    ``--only fig13``, ``--only "Figure 13"`` and ``--only figure_13`` all
    select the "Figure 13" steps: comparisons also run with spaces,
    underscores, and the ``figure``/``fig`` spelling difference
    collapsed, so the slug users see in trace file names and the short
    form used throughout the docs both work.
    """
    slug = _slug(label)
    needle = needle.lower()
    if needle in slug or needle in label.lower():
        return True
    flat = slug.replace("_", "").replace("figure", "fig")
    return needle.replace("_", "").replace(" ", "").replace("figure", "fig") in flat


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="run the paper's experiment suite and print every table",
    )
    parser.add_argument("--quick", action="store_true",
                        help="6-app subset instead of all workloads")
    parser.add_argument("--workload", action="append", default=None,
                        metavar="NAME", dest="workloads",
                        help="restrict the figures to workload NAME "
                             "(repeatable; see 'repro workloads list')")
    parser.add_argument("--charts", action="store_true",
                        help="append an ASCII bar chart to each figure")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the simulation prewarm "
                             "(default: CPU count; 1 disables the pool)")
    parser.add_argument("--only", default=None, metavar="SUBSTR",
                        help="run only steps whose name contains SUBSTR "
                             "(matched against e.g. 'figure_13')")
    parser.add_argument("--machine", action="append", default=None,
                        metavar="SPEC", dest="machines",
                        help="restrict the machine-zoo sweep to SPEC "
                             "(repeatable; builtin name, zoo:<name>, "
                             "sysfs:<path>, or lscpu:<path>)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the persistent result cache entirely")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent cache directory "
                             "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    return parser


def _run_chunk(specs):
    """Worker: execute one chunk of recorded specs.

    Runs with the disk cache off — the parent is the only writer — and
    under a sink-less recorder so decision counters incremented during
    the runs travel back to the parent.
    """
    harness.disable_disk_cache()
    with obs.tracing() as recorder:
        results = [harness.execute_spec(spec) for spec in specs]
        counters = dict(recorder.counters)
    return results, counters


def _chunk_specs(specs):
    """Group specs by (workload, mapping machine): runs in one chunk share
    the worker's mapping memo, so the expensive mapping phase happens once
    per group rather than once per run."""
    groups: dict = {}
    for spec in specs:
        machine = spec.mapping_machine or spec.machine or spec.version
        groups.setdefault((spec.app, machine.name), []).append(spec)
    return list(groups.values())


def _prewarm(steps, jobs: int) -> None:
    """Record the steps' uncached runs and execute them over a pool."""
    t0 = time.perf_counter()
    specs = harness.record_specs(lambda: [runner() for _, runner in steps])
    if not specs:
        return
    chunks = _chunk_specs(specs)
    print(f"[prewarm: {len(specs)} runs / {len(chunks)} chunks on {jobs} workers]")
    with obs.span("experiments.prewarm", runs=len(specs), jobs=jobs):
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {pool.submit(_run_chunk, chunk): chunk for chunk in chunks}
            for future in as_completed(futures):
                chunk = futures[future]
                results, counters = future.result()
                for spec, result in zip(chunk, results):
                    harness.seed_result(spec, result)
                for name, value in counters.items():
                    obs.count(name, value)
    print(f"[prewarm: done in {time.perf_counter() - t0:.1f}s]")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv if argv is not None else sys.argv[1:])
    apps = QUICK_APPS if args.quick else None
    if args.workloads:
        # Validate names up front: an unknown workload is a usage error
        # (exit 2 with the menu), matching the machine-spec behavior.
        from repro.errors import UnknownWorkloadError
        from repro.workloads import workload

        try:
            for name in args.workloads:
                workload(name)
        except UnknownWorkloadError as error:
            print(f"error: unknown workload {error.name!r}; known workloads: "
                  f"{', '.join(error.known)}", file=sys.stderr)
            return 2
        apps = tuple(args.workloads)
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)

    if args.machines:
        # Validate the specs up front: an unknown machine is a usage
        # error (exit 2 with the menu), same contract as --only.
        from repro.errors import UnknownMachineError
        from repro.topology.resolve import resolve_machine

        try:
            for spec in args.machines:
                resolve_machine(spec)
        except UnknownMachineError as error:
            print(f"error: unknown machine {error.spec!r}; known machines: "
                  f"{', '.join(error.known)}", file=sys.stderr)
            return 2

    steps = _steps(apps, args.machines)
    if args.only:
        all_slugs = [_slug(label) for label, _runner in steps]
        steps = [s for s in steps if _matches(args.only, s[0])]
        if not steps:
            print(
                f"error: no step matches --only {args.only!r}; available "
                f"steps: {', '.join(all_slugs)}",
                file=sys.stderr,
            )
            return 2
    if not args.no_cache:
        harness.enable_disk_cache(args.cache_dir)
    try:
        if jobs > 1:
            _prewarm(steps, jobs)
        for label, runner in steps:
            t0 = time.perf_counter()
            # With REPRO_TRACE_DIR set, each step writes <dir>/<slug>.jsonl.
            with harness.figure_trace(_slug(label)):
                result = runner()
            elapsed = time.perf_counter() - t0
            print(result.table())
            if args.charts:
                _maybe_chart(result)
            print(f"[{label}: {elapsed:.1f}s]")
            print()
    finally:
        harness.disable_disk_cache()
    return 0


def _maybe_chart(result) -> None:
    """Chart the last numeric column, when one exists."""
    from repro.errors import ExperimentError
    from repro.experiments.charts import figure_chart

    for header in reversed(result.headers):
        try:
            chart = figure_chart(result, header)
        except ExperimentError:
            continue
        print()
        print(chart)
        return


if __name__ == "__main__":
    raise SystemExit(main())
