"""Ablation (Section 4.2 text): the α / β scheduling weights.

The paper experimented with different α (shared-cache, horizontal) and β
(L1, vertical) weights and found equal weights best: "if β is too big,
the potential locality in the shared caches is missed, and if α is too
big, L1 locality starts to suffer."  We sweep the mix on the
scheduling-sensitive workloads.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.harness import FigureResult, geometric_mean, run_scheme, sim_machine
from repro.topology.machines import dunnington
from repro.workloads import paper_workloads

WEIGHTS = ((1.0, 0.0), (0.75, 0.25), (0.5, 0.5), (0.25, 0.75), (0.0, 1.0))

#: scheduling-sensitive subset (banded / folded kernels)
DEFAULT_APPS = ("equake", "cg", "freqmine", "namd", "galgel", "bodytrack")


def run(apps: Sequence[str] | None = None) -> FigureResult:
    names = tuple(apps) if apps is not None else DEFAULT_APPS
    selected = [w for w in paper_workloads() if w.name in names]
    machine = sim_machine(dunnington())
    rows = []
    for alpha, beta in WEIGHTS:
        ratios = []
        for app in selected:
            base = run_scheme(app, "base", machine).cycles
            cycles = run_scheme(app, "ta+s", machine, alpha=alpha, beta=beta).cycles
            ratios.append(cycles / base)
        rows.append((f"a={alpha:g}, b={beta:g}", round(geometric_mean(ratios), 3)))
    return FigureResult(
        figure="Ablation: alpha/beta scheduling weights (combined scheme, vs Base)",
        headers=("weights", "normalized cycles"),
        rows=tuple(rows),
        notes="paper: equal weights generated the best results.",
    )


if __name__ == "__main__":
    print(run().table())
