"""Figure 17: scaling the core count (simulation; 12 -> 18 -> 24 cores).

The paper extends the Dunnington architecture one six-core socket at a
time and reports the TopologyAware improvement over Base growing from 29%
at 12 cores to 46% at 24 (Base's data access patterns grow sparser per
core as cores multiply).

This experiment enables the simulator's shared-cache port-contention
model: with more cores behind each shared component, schemes that miss
more above the shared levels queue more — the contention pressure a
cycle-accurate platform like GEMS exposes and pure hit/miss accounting
hides.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.harness import FigureResult, geometric_mean, run_scheme, sim_machine
from repro.topology.machines import dunnington_scaled
from repro.workloads import paper_workloads

CORE_COUNTS = (12, 18, 24)


def run(apps: Sequence[str] | None = None) -> FigureResult:
    selected = [w for w in paper_workloads() if apps is None or w.name in apps]
    rows = []
    for cores in CORE_COUNTS:
        machine = sim_machine(dunnington_scaled(cores))
        ratios_bp = []
        ratios_ta = []
        for app in selected:
            base = run_scheme(app, "base", machine, port_occupancy=2).cycles
            ratios_bp.append(
                run_scheme(app, "base+", machine, port_occupancy=2).cycles / base
            )
            ratios_ta.append(
                run_scheme(app, "ta", machine, port_occupancy=2).cycles / base
            )
        rows.append(
            (
                cores,
                round(geometric_mean(ratios_bp), 3),
                round(geometric_mean(ratios_ta), 3),
            )
        )
    return FigureResult(
        figure="Figure 17: core-count scaling (vs Base on the same machine)",
        headers=("cores", "Base+", "TopologyAware"),
        rows=tuple(rows),
        notes="paper: TopologyAware improvement over Base grows 29% -> 46% "
        "from 12 to 24 cores.",
    )


if __name__ == "__main__":
    print(run().table())
