"""ASCII bar charts for figure results.

The paper's figures are normalized bar charts; for terminal-friendly
reports we render the same data as horizontal bars.  Used by the CLI and
by ``run_all --charts``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import ExperimentError


def bar_chart(
    series: Mapping[str, float] | Sequence[tuple[str, float]],
    title: str | None = None,
    width: int = 48,
    reference: float | None = 1.0,
    fill: str = "#",
) -> str:
    """Horizontal bar chart of labelled values.

    ``reference`` draws a tick at that value (the Base = 1.0 line of the
    paper's normalized charts); bars are scaled so the largest value (or
    the reference, if larger) spans ``width`` characters.
    """
    items = list(series.items()) if isinstance(series, Mapping) else list(series)
    if not items:
        raise ExperimentError("nothing to chart")
    if width < 8:
        raise ExperimentError("chart width must be at least 8")
    top = max(v for _, v in items)
    if reference is not None:
        top = max(top, reference)
    if top <= 0:
        raise ExperimentError("chart values must include a positive value")
    label_width = max(len(label) for label, _ in items)

    lines = []
    if title:
        lines.append(title)
    for label, value in items:
        bar_len = max(0, round(value / top * width))
        bar = fill * bar_len
        if reference is not None:
            ref_pos = round(reference / top * width)
            if ref_pos >= len(bar):
                bar = bar.ljust(ref_pos) + "|"
            else:
                bar = bar[:ref_pos] + "|" + bar[ref_pos + 1 :]
        lines.append(f"{label.ljust(label_width)}  {value:7.3f}  {bar}")
    return "\n".join(lines)


def figure_chart(result, value_column: str, label_column: str | None = None) -> str:
    """Chart one numeric column of a FigureResult."""
    labels = result.column(label_column) if label_column else result.column(result.headers[0])
    values = result.column(value_column)
    pairs = []
    for label, value in zip(labels, values):
        if isinstance(value, (int, float)):
            pairs.append((str(label), float(value)))
    if not pairs:
        raise ExperimentError(f"column {value_column!r} has no numeric values")
    return bar_chart(pairs, title=f"{result.figure} — {value_column}")
